/**
 * @file
 * The host-speed layer's correctness suite (docs/PERFORMANCE.md).
 * Three families of guarantees:
 *
 *  - EventWheel unit + fuzz: the calendar queue behind SmCore's
 *    completion retirement is drop-in equivalent to the
 *    std::map<Cycle, std::vector> it replaced — including ring
 *    wrap-around, the beyond-horizon overflow path, in-bucket FIFO
 *    order, and nextEventCycle() at a cycle boundary (an event due
 *    at exactly `now` must report `now`, or idle fast-forward would
 *    jump past it).
 *
 *  - Fast-forward equivalence: hostFastForward on vs off produces
 *    bit-identical SimResults — every stat, metric, final register
 *    and memory word — across workloads, architectures and SM
 *    counts. The only permitted difference is the
 *    core.fastforward_cycles diagnostic itself.
 *
 *  - Fast-forward engagement: on a memory-stall-heavy workload the
 *    optimization actually fires (fastforwardCycles > 0), so the
 *    equivalence above is not vacuous.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/event_wheel.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "tests/fuzz_kernels.h"
#include "workloads/registry.h"

namespace bow {
namespace {

// ---------------------------------------------------------------------
// EventWheel unit tests.
// ---------------------------------------------------------------------

TEST(EventWheel, RoundsHorizonUpToPowerOfTwoFloor64)
{
    EXPECT_EQ(EventWheel<int>(1).horizon(), 64u);
    EXPECT_EQ(EventWheel<int>(64).horizon(), 64u);
    EXPECT_EQ(EventWheel<int>(65).horizon(), 128u);
    EXPECT_EQ(EventWheel<int>(608).horizon(), 1024u);
}

TEST(EventWheel, EmptyWheelHasNoNextEvent)
{
    EventWheel<int> wheel(64);
    EXPECT_TRUE(wheel.empty());
    EXPECT_EQ(wheel.nextEventCycle(0), kNoCycle);
    EXPECT_EQ(wheel.nextEventCycle(12345), kNoCycle);
    std::vector<int> out;
    EXPECT_FALSE(wheel.takeDue(7, out));
    EXPECT_TRUE(out.empty());
}

TEST(EventWheel, PopsInCycleOrderAndBucketFifoOrder)
{
    EventWheel<int> wheel(64);
    wheel.schedule(0, 5, 50);
    wheel.schedule(0, 3, 30);
    wheel.schedule(0, 5, 51);   // same bucket: FIFO after 50
    wheel.schedule(0, 1, 10);
    EXPECT_EQ(wheel.size(), 4u);

    std::vector<int> out;
    EXPECT_EQ(wheel.nextEventCycle(1), 1u);
    EXPECT_TRUE(wheel.takeDue(1, out));
    EXPECT_EQ(out, (std::vector<int>{10}));

    EXPECT_EQ(wheel.nextEventCycle(2), 3u);
    EXPECT_FALSE(wheel.takeDue(2, out));
    EXPECT_TRUE(wheel.takeDue(3, out));
    EXPECT_EQ(out, (std::vector<int>{30}));

    EXPECT_TRUE(wheel.takeDue(5, out));
    EXPECT_EQ(out, (std::vector<int>{50, 51}));
    EXPECT_TRUE(wheel.empty());
}

TEST(EventWheel, NextEventAtExactlyNowReportsNow)
{
    // The fast-forward caller asks "where is the next event?" at a
    // cycle boundary; an event due this very cycle must not be
    // skipped over.
    EventWheel<int> wheel(64);
    wheel.schedule(9, 10, 1);
    EXPECT_EQ(wheel.nextEventCycle(10), 10u);
}

TEST(EventWheel, WrapAroundKeepsCyclesSeparate)
{
    // Drive the clock several times around the ring; a bucket is
    // reused by many cycles but never mixes two of them.
    EventWheel<int> wheel(64);
    const unsigned horizon = wheel.horizon();
    std::vector<int> out;
    Cycle now = 0;
    for (int lap = 0; lap < 5; ++lap) {
        for (unsigned i = 0; i < horizon; ++i) {
            // Full-horizon lookahead: lands in the bucket now & mask
            // occupies — the one takeDue just drained.
            wheel.takeDue(now, out);
            for (const int v : out)
                EXPECT_EQ(static_cast<Cycle>(v), now) << "now=" << now;
            wheel.schedule(now, now + horizon,
                           static_cast<int>(now + horizon));
            ++now;
        }
    }
    // Drain the tail.
    while (!wheel.empty()) {
        wheel.takeDue(now, out);
        for (const int v : out)
            EXPECT_EQ(static_cast<Cycle>(v), now);
        ++now;
    }
}

TEST(EventWheel, BeyondHorizonEventsMigrateFromOverflow)
{
    EventWheel<int> wheel(64);
    const unsigned horizon = wheel.horizon();
    const Cycle far = 3 * horizon + 17;
    wheel.schedule(0, far, 7);
    wheel.schedule(0, 2, 2);
    EXPECT_EQ(wheel.size(), 2u);
    EXPECT_EQ(wheel.nextEventCycle(0), 2u);

    std::vector<int> out;
    EXPECT_TRUE(wheel.takeDue(2, out));
    EXPECT_EQ(out, (std::vector<int>{2}));

    // The overflow event is now the only one; nextEventCycle must
    // see it even though no ring bucket is occupied yet.
    EXPECT_EQ(wheel.nextEventCycle(3), far);

    // Step straight to it (idle fast-forward) and pop.
    EXPECT_TRUE(wheel.takeDue(far, out));
    EXPECT_EQ(out, (std::vector<int>{7}));
    EXPECT_TRUE(wheel.empty());
}

TEST(EventWheel, SerializationBoundaryCases)
{
    // The snapshot codec walks the wheel with forEachEvent() and
    // rebuilds it with restoreEvent(). Two window-edge cases are easy
    // to get wrong and must stay pinned:
    //  - an event due at exactly `now` must be emitted and, after the
    //    round trip, still fire at `now` (losing it would deadlock
    //    the resumed retirement),
    //  - an overflow event at now + horizon - 1 (legal after a
    //    fast-forward: schedule() only migrates on takeDue) must keep
    //    inRing=false so the restored wheel merges it in the same
    //    order the original would have.
    EventWheel<int> wheel(64);
    const unsigned horizon = wheel.horizon();
    const Cycle now = 1000;
    wheel.schedule(now - 1, now, 1);       // due this very cycle
    wheel.schedule(now - 1, now + 3, 2);   // plain ring event
    // Forced into overflow: scheduled far out, then the clock jumped
    // (fast-forward) so it now sits inside the window, unmigrated.
    wheel.schedule(0, now + horizon - 1, 3);

    struct Saved
    {
        Cycle when;
        int item;
        bool inRing;
    };
    std::vector<Saved> saved;
    wheel.forEachEvent(now, [&](Cycle when, int item, bool inRing) {
        saved.push_back({when, item, inRing});
    });
    ASSERT_EQ(saved.size(), 3u);
    EXPECT_EQ(saved[0].when, now);
    EXPECT_EQ(saved[0].item, 1);
    EXPECT_TRUE(saved[0].inRing);
    EXPECT_EQ(saved[2].when, now + horizon - 1);
    EXPECT_EQ(saved[2].item, 3);
    EXPECT_FALSE(saved[2].inRing) <<
        "unmigrated overflow event must restore into the overflow map";

    EventWheel<int> restored(64);
    for (const Saved &s : saved)
        restored.restoreEvent(s.when, s.item, s.inRing);
    EXPECT_EQ(restored.size(), wheel.size());

    // The at-boundary event fires immediately on the restored wheel.
    EXPECT_EQ(restored.nextEventCycle(now), now);
    std::vector<int> out;
    EXPECT_TRUE(restored.takeDue(now, out));
    EXPECT_EQ(out, (std::vector<int>{1}));

    // And the two wheels drain identically from here.
    std::vector<int> expect;
    Cycle cursor = now;
    wheel.takeDue(cursor, expect);
    while (!wheel.empty() || !restored.empty()) {
        ++cursor;
        const bool a = wheel.takeDue(cursor, expect);
        const bool b = restored.takeDue(cursor, out);
        ASSERT_EQ(a, b) << "cycle " << cursor;
        ASSERT_EQ(out, expect) << "cycle " << cursor;
    }
}

TEST(EventWheel, SchedulingIntoThePastPanics)
{
    EventWheel<int> wheel(64);
    EXPECT_THROW(wheel.schedule(5, 5, 1), PanicError);
    EXPECT_THROW(wheel.schedule(5, 4, 1), PanicError);
}

TEST(EventWheel, FuzzMatchesMapReferenceModel)
{
    // Differential fuzz against the exact structure the wheel
    // replaced. Random bursts of schedules (mostly within the
    // horizon, sometimes far beyond it), random idle gaps, and the
    // occasional fast-forward jump to nextEventCycle().
    EventWheel<std::uint64_t> wheel(100);
    std::map<Cycle, std::vector<std::uint64_t>> model;
    Rng rng(0xB0C5EEDull);
    Cycle now = 0;
    std::uint64_t payload = 0;
    std::vector<std::uint64_t> out;

    for (int step = 0; step < 20'000; ++step) {
        // Pop everything due now, in both structures.
        const bool had = wheel.takeDue(now, out);
        const auto it = model.find(now);
        if (it != model.end()) {
            ASSERT_TRUE(had) << "now=" << now;
            ASSERT_EQ(out, it->second) << "now=" << now;
            model.erase(it);
        } else {
            ASSERT_FALSE(had) << "now=" << now;
        }

        // Schedule a random burst.
        const unsigned burst = static_cast<unsigned>(rng.below(4));
        for (unsigned i = 0; i < burst; ++i) {
            Cycle delta = 1 + rng.below(90);
            if (rng.below(10) == 0)
                delta = 1 + rng.below(5000); // deep overflow
            wheel.schedule(now, now + delta, payload);
            model[now + delta].push_back(payload);
            ++payload;
        }

        // Advance: usually one cycle, sometimes an idle jump.
        ++now;
        if (rng.below(8) == 0) {
            const Cycle next = wheel.nextEventCycle(now);
            const Cycle modelNext =
                model.empty() ? kNoCycle : model.begin()->first;
            ASSERT_EQ(next, std::max(modelNext, now))
                << "now=" << now;
            if (next != kNoCycle && next > now)
                now = next;
        }
    }
    ASSERT_EQ(wheel.size(),
              [&] {
                  std::size_t n = 0;
                  for (const auto &[c, v] : model)
                      n += v.size();
                  return n;
              }());
}

// ---------------------------------------------------------------------
// Idle fast-forward: bit-identical results, and it actually engages.
// ---------------------------------------------------------------------

/** All-but-fastforwardCycles equality of two RunStats. */
void
expectStatsEqualModuloFf(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ocCyclesMem, b.ocCyclesMem);
    EXPECT_EQ(a.ocCyclesNonMem, b.ocCyclesNonMem);
    EXPECT_EQ(a.totalCyclesMem, b.totalCyclesMem);
    EXPECT_EQ(a.totalCyclesNonMem, b.totalCyclesNonMem);
    EXPECT_EQ(a.instsMem, b.instsMem);
    EXPECT_EQ(a.instsNonMem, b.instsNonMem);
    EXPECT_EQ(a.rfReads, b.rfReads);
    EXPECT_EQ(a.rfWrites, b.rfWrites);
    EXPECT_EQ(a.bocForwards, b.bocForwards);
    EXPECT_EQ(a.bocDeposits, b.bocDeposits);
    EXPECT_EQ(a.bocResultWrites, b.bocResultWrites);
    EXPECT_EQ(a.rfcReads, b.rfcReads);
    EXPECT_EQ(a.rfcWrites, b.rfcWrites);
    EXPECT_EQ(a.consolidatedWrites, b.consolidatedWrites);
    EXPECT_EQ(a.transientDrops, b.transientDrops);
    EXPECT_EQ(a.safetyWrites, b.safetyWrites);
    EXPECT_EQ(a.destRfOnly, b.destRfOnly);
    EXPECT_EQ(a.destBocOnly, b.destBocOnly);
    EXPECT_EQ(a.destBocAndRf, b.destBocAndRf);
    EXPECT_EQ(a.srcOperandHist, b.srcOperandHist);
    EXPECT_EQ(a.bocOccupancyHist, b.bocOccupancyHist);
    EXPECT_EQ(a.bankReadConflicts, b.bankReadConflicts);
    EXPECT_EQ(a.bankWriteConflicts, b.bankWriteConflicts);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.peakResident, b.peakResident);
}

/** The fast-forward diagnostic is the one metric allowed to differ. */
bool
isFfDiagnostic(const std::string &name)
{
    const std::string suffix = "core.fastforward_cycles";
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

void
expectMetricsEqualModuloFf(const MetricsRegistry &a,
                           const MetricsRegistry &b)
{
    ASSERT_EQ(a.names(), b.names());
    for (const std::string &name : a.names()) {
        if (isFfDiagnostic(name))
            continue;
        ASSERT_EQ(a.kindOf(name), b.kindOf(name)) << name;
        switch (a.kindOf(name)) {
          case MetricKind::Counter:
            EXPECT_EQ(a.counter(name), b.counter(name)) << name;
            break;
          case MetricKind::Value:
            EXPECT_EQ(a.value(name), b.value(name)) << name;
            break;
          case MetricKind::Hist:
            EXPECT_EQ(a.hist(name), b.hist(name)) << name;
            break;
        }
    }
}

void
expectFfEquivalent(const Launch &launch, SimConfig config,
                   const std::string &label)
{
    config.hostFastForward = true;
    const SimResult on = Simulator(config).run(launch);
    config.hostFastForward = false;
    const SimResult off = Simulator(config).run(launch);

    SCOPED_TRACE(label);
    expectStatsEqualModuloFf(on.stats, off.stats);
    EXPECT_EQ(off.stats.fastforwardCycles, 0u);
    expectMetricsEqualModuloFf(on.metrics, off.metrics);
    ASSERT_EQ(on.finalRegs.size(), off.finalRegs.size());
    for (std::size_t w = 0; w < on.finalRegs.size(); ++w)
        EXPECT_EQ(on.finalRegs[w], off.finalRegs[w]) << "warp " << w;
    EXPECT_TRUE(on.finalMem.contentsEqual(off.finalMem));
}

TEST(FastForward, BitIdenticalOnRealWorkloads)
{
    constexpr double kScale = 0.05; // pinned like the golden gate
    const struct
    {
        const char *workload;
        Architecture arch;
    } cases[] = {
        {"VECTORADD", Architecture::Baseline},
        {"BTREE", Architecture::BOW_WR},
        {"BFS", Architecture::RFC},
        {"BTREE", Architecture::BOW_WR_OPT},
    };
    for (const auto &c : cases) {
        const Workload wl = workloads::make(c.workload, kScale);
        expectFfEquivalent(wl.launch, configFor(c.arch),
                           strf(c.workload, "/", archName(c.arch)));
    }
}

class FastForwardFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FastForwardFuzz, BitIdenticalAcrossArchsAndSmCounts)
{
    Launch launch = fuzzKernelLaunch(GetParam());
    launch.warpsPerCta = 1 + static_cast<unsigned>(GetParam() % 4);

    for (Architecture arch :
         {Architecture::Baseline, Architecture::BOW_WR,
          Architecture::BOW_WR_OPT}) {
        for (unsigned numSms : {1u, 2u, 4u}) {
            SimConfig config = configFor(arch);
            config.numSms = numSms;
            expectFfEquivalent(
                launch, config,
                strf("seed=", GetParam(), " arch=", archName(arch),
                     " numSms=", numSms));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastForwardFuzz,
                         ::testing::Values(1, 7, 42, 1234));

TEST(FastForward, EngagesOnMemoryStallHeavyWorkload)
{
    // BTREE's pointer chasing leaves every warp waiting on memory for
    // long stretches; if the fast-forward never fired here, the
    // equivalence tests above would be testing nothing.
    const Workload wl = workloads::make("BTREE", 0.05);
    SimConfig config = configFor(Architecture::BOW_WR);
    ASSERT_TRUE(config.hostFastForward); // on by default
    const SimResult res = Simulator(config).run(wl.launch);
    EXPECT_GT(res.stats.fastforwardCycles, 0u);
    EXPECT_EQ(res.metrics.counter("sm0.core.fastforward_cycles"),
              res.stats.fastforwardCycles);
}

TEST(FastForward, EngagesInMultiSmModel)
{
    const Workload wl = workloads::make("BTREE", 0.05);
    SimConfig config = configFor(Architecture::BOW_WR);
    config.numSms = 2;
    const SimResult res = Simulator(config).run(wl.launch);
    EXPECT_GT(res.stats.fastforwardCycles, 0u);
}

} // namespace
} // namespace bow
