/**
 * @file
 * Execution-unit pool tests: per-cycle dispatch widths, latency
 * classes, and the CTRL/ALU slot sharing.
 */

#include <gtest/gtest.h>

#include "sm/exec_unit.h"

namespace bow {
namespace {

TEST(ExecUnits, WidthsLimitDispatchesPerCycle)
{
    SimConfig config = SimConfig::titanXPascal();
    ExecUnits units(config);
    units.newCycle();
    for (unsigned i = 0; i < config.aluWidth; ++i) {
        EXPECT_TRUE(units.canDispatch(ExecUnit::ALU));
        units.dispatch(ExecUnit::ALU);
    }
    EXPECT_FALSE(units.canDispatch(ExecUnit::ALU));

    EXPECT_TRUE(units.canDispatch(ExecUnit::SFU));
    units.dispatch(ExecUnit::SFU);
    EXPECT_FALSE(units.canDispatch(ExecUnit::SFU));

    EXPECT_TRUE(units.canDispatch(ExecUnit::LDST));
    units.dispatch(ExecUnit::LDST);
    EXPECT_FALSE(units.canDispatch(ExecUnit::LDST));
}

TEST(ExecUnits, NewCycleResets)
{
    SimConfig config = SimConfig::titanXPascal();
    ExecUnits units(config);
    units.newCycle();
    for (unsigned i = 0; i < config.aluWidth; ++i)
        units.dispatch(ExecUnit::ALU);
    EXPECT_FALSE(units.canDispatch(ExecUnit::ALU));
    units.newCycle();
    EXPECT_TRUE(units.canDispatch(ExecUnit::ALU));
}

TEST(ExecUnits, CtrlSharesAluSlot)
{
    SimConfig config = SimConfig::titanXPascal();
    ExecUnits units(config);
    units.newCycle();
    for (unsigned i = 0; i < config.aluWidth; ++i)
        units.dispatch(ExecUnit::CTRL);
    EXPECT_FALSE(units.canDispatch(ExecUnit::ALU));
    EXPECT_FALSE(units.canDispatch(ExecUnit::CTRL));
}

TEST(ExecUnits, LatencyByUnitClass)
{
    SimConfig config = SimConfig::titanXPascal();
    ExecUnits units(config);
    EXPECT_EQ(units.latency(Opcode::ADD), config.aluLatency);
    EXPECT_EQ(units.latency(Opcode::MAD), config.aluLatency);
    EXPECT_EQ(units.latency(Opcode::SQRT), config.sfuLatency);
    EXPECT_EQ(units.latency(Opcode::BRA), config.ctrlLatency);
    // Memory service time is added by the memory model; the LDST
    // pipe itself contributes one cycle.
    EXPECT_EQ(units.latency(Opcode::LD_GLOBAL), 1u);
}

TEST(ExecUnits, DispatchCountersAccumulate)
{
    SimConfig config = SimConfig::titanXPascal();
    ExecUnits units(config);
    units.newCycle();
    units.dispatch(ExecUnit::ALU);
    units.dispatch(ExecUnit::SFU);
    units.newCycle();
    units.dispatch(ExecUnit::ALU);
    EXPECT_EQ(units.stats().counterValue("alu_dispatches"), 2u);
    EXPECT_EQ(units.stats().counterValue("sfu_dispatches"), 1u);
}

} // namespace
} // namespace bow
