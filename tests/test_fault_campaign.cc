/**
 * @file
 * Device-scale fault-campaign tests: multi-SM campaign determinism
 * across job counts, host-thread counts and SM counts; the GpuCore
 * serial fallback under an armed injector; crash-safe checkpoint
 * resume (including a torn trailing line); transient-host-error
 * retry and graceful degradation to outcome=fatal; the campaign.*
 * metrics export; and the device fault sites themselves — SharedL2
 * line flips with refetch-heal semantics and CTA-scheduler record
 * corruption. Runs under ASan+UBSan as a tier-1 memory-safety
 * configuration (tests/CMakeLists.txt).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/metrics.h"
#include "core/fault_campaign.h"
#include "core/parallel_runner.h"
#include "core/result_cache.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "gpu/cta_scheduler.h"
#include "gpu/device_fault.h"
#include "gpu/gpu_core.h"
#include "gpu/shared_l2.h"
#include "workloads/builder.h"
#include "workloads/registry.h"

using namespace bow;

namespace {

constexpr double kScale = 0.05;

Workload
wrap(const std::string &name, Launch launch)
{
    Workload wl;
    wl.name = name;
    wl.scale = 1.0;
    wl.launch = std::move(launch);
    return wl;
}

/** Two-CTA launch whose warps all read one global word twice, with a
 *  long nop stretch in between — a window where an L2 flip of that
 *  word is certainly resident and certainly re-read. */
Launch
l2ReaderLaunch()
{
    KernelBuilder kb("l2_reader");
    kb.movImm(1, 0x40);
    kb.load(Opcode::LD_GLOBAL, 2, 1, 0);
    for (int i = 0; i < 120; ++i)
        kb.nop();
    kb.load(Opcode::LD_GLOBAL, 3, 1, 0);
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = 2;
    launch.warpsPerCta = 1;
    launch.initMem.emplace_back(MemSpace::Global, 0x40, Value{5});
    return launch;
}

/** Four warps in two CTAs — the shape the CTA-record corruption
 *  tests flip around. */
Launch
fourWarpLaunch()
{
    KernelBuilder kb("four_warps");
    kb.movImm(1, 7);
    for (int i = 0; i < 20; ++i)
        kb.nop();
    kb.alu2(Opcode::ADD, 2, 1, 1);
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = 4;
    launch.warpsPerCta = 2;
    return launch;
}

void
expectSummariesEqual(const CampaignSummary &a, const CampaignSummary &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.hang, b.hang);
    EXPECT_EQ(a.fatal, b.fatal);
    EXPECT_EQ(a.landed, b.landed);
    EXPECT_EQ(a.healed, b.healed);
    EXPECT_DOUBLE_EQ(a.avfPct(), b.avfPct());
}

/** Full metric-registry equality (names, kinds, exact values). */
void
expectRegistriesEqual(const MetricsRegistry &a, const MetricsRegistry &b)
{
    std::vector<std::string> names = a.names();
    for (const std::string &n : b.names()) {
        if (!a.has(n))
            names.push_back(n);
    }
    for (const std::string &n : names) {
        ASSERT_TRUE(a.has(n)) << n;
        ASSERT_TRUE(b.has(n)) << n;
        ASSERT_EQ(a.kindOf(n), b.kindOf(n)) << n;
        switch (a.kindOf(n)) {
          case MetricKind::Counter:
            EXPECT_EQ(a.counter(n), b.counter(n)) << n;
            break;
          case MetricKind::Value:
            EXPECT_EQ(a.value(n), b.value(n)) << n;
            break;
          case MetricKind::Hist:
            EXPECT_EQ(a.hist(n), b.hist(n)) << n;
            break;
        }
    }
}

class FaultCampaignTest : public ::testing::Test
{
  protected:
    void SetUp() override { globalResultCache().reset(); }
    void TearDown() override
    {
        globalResultCache().reset();
        ParallelRunner::setDefaultJobs(0);
        setMetricsAggregation(false);
    }
};

// Acceptance: identical seeds yield identical per-SM/per-site flip
// schedules and identical classification at any --jobs count, any
// hostThreads count and any SM count.
TEST_F(FaultCampaignTest, DeterministicAcrossJobsHostThreadsAndSms)
{
    const Workload wl = workloads::make("VECTORADD", kScale);

    for (unsigned numSms : {1u, 4u, 28u}) {
        SimConfig base = configFor(Architecture::BOW_WR, 6);
        base.numSms = numSms;

        CampaignSpec spec;
        spec.trials = 8;
        spec.seed = 0xD15EA5E;
        spec.sites = validSites(
            base, {FaultSite::RfBank, FaultSite::BocEntry,
                   FaultSite::L2Line, FaultSite::CtaSched});

        globalResultCache().reset();
        std::vector<FaultTrialResult> refTrials;
        const CampaignSummary ref = runFaultCampaign(
            wl, base, spec, ParallelRunner(1), &refTrials);
        MetricsRegistry refReg;
        ref.exportMetrics(refReg);

        for (unsigned jobs : {1u, 4u}) {
            for (unsigned hostThreads : {1u, 4u}) {
                if (jobs == 1 && hostThreads == 1)
                    continue;
                SimConfig cfg = base;
                cfg.hostThreads = hostThreads;
                globalResultCache().reset();
                std::vector<FaultTrialResult> trials;
                const CampaignSummary s = runFaultCampaign(
                    wl, cfg, spec, ParallelRunner(jobs), &trials);
                SCOPED_TRACE(strf("numSms=", numSms, " jobs=", jobs,
                                  " hostThreads=", hostThreads));
                expectSummariesEqual(ref, s);
                MetricsRegistry reg;
                s.exportMetrics(reg);
                expectRegistriesEqual(refReg, reg);
                ASSERT_EQ(refTrials.size(), trials.size());
                for (std::size_t i = 0; i < trials.size(); ++i) {
                    EXPECT_EQ(refTrials[i].plan.describe(),
                              trials[i].plan.describe())
                        << i;
                    EXPECT_EQ(refTrials[i].outcome, trials[i].outcome)
                        << i;
                }
            }
        }
    }
}

// Satellite: an armed injector forces GpuCore into serial stepping
// with a warning instead of the staged-memory panic, and the result
// is bit-identical to a serial run.
TEST_F(FaultCampaignTest, InjectorForcesSerialSmStepping)
{
    const Workload wl = workloads::make("VECTORADD", kScale);

    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 4;
    cfg.hostThreads = 4;

    // Clean run: the requested thread budget sticks.
    {
        GpuCore clean(cfg, wl.launch);
        EXPECT_EQ(clean.hostThreads(), 4u);
    }

    FaultPlan plan;
    plan.enabled = true;
    plan.site = FaultSite::RfBank;
    plan.warp = 0;
    plan.reg = 1;
    plan.bit = 2;
    plan.cycle = 3;

    FaultInjector par(plan, FaultProtection::None);
    GpuCore gpu(cfg, wl.launch, nullptr, &par);
    EXPECT_EQ(gpu.hostThreads(), 1u);   // serial fallback, no panic
    const RunStats statsPar = gpu.run();

    SimConfig serial = cfg;
    serial.hostThreads = 1;
    FaultInjector ser(plan, FaultProtection::None);
    GpuCore ref(serial, wl.launch, nullptr, &ser);
    const RunStats statsSer = ref.run();

    EXPECT_EQ(statsPar.cycles, statsSer.cycles);
    EXPECT_EQ(statsPar.instructions, statsSer.instructions);
    ASSERT_EQ(gpu.finalRegs().size(), ref.finalRegs().size());
    for (std::size_t w = 0; w < gpu.finalRegs().size(); ++w)
        EXPECT_EQ(gpu.finalRegs()[w], ref.finalRegs()[w]) << w;
    EXPECT_EQ(par.report().fired, ser.report().fired);
    EXPECT_EQ(par.report().landed, ser.report().landed);
}

// Satellite: a checkpoint whose final line was torn mid-write (the
// classic kill-during-append) is tolerated — the torn trial re-runs
// and the resumed campaign byte-matches an uninterrupted one.
TEST_F(FaultCampaignTest, TruncatedCheckpointLineIsSkippedAndRerun)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 4;
    const ParallelRunner runner(1);

    const std::string path =
        testing::TempDir() + "fault_ckpt_torn.jsonl";
    std::remove(path.c_str());

    CampaignSpec spec;
    spec.trials = 8;
    spec.seed = 31;
    spec.sites = validSites(
        cfg, {FaultSite::RfBank, FaultSite::L2Line,
              FaultSite::CtaSched});
    spec.checkpointPath = path;

    const CampaignSummary full =
        runFaultCampaign(wl, cfg, spec, runner);
    EXPECT_GT(full.checkpointWrites, 0u);

    // Tear the checkpoint: drop the second half of the last line.
    std::vector<std::string> lines;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), spec.trials);
    {
        std::ofstream out(path, std::ios::trunc);
        for (std::size_t i = 0; i + 1 < lines.size(); ++i)
            out << lines[i] << "\n";
        out << lines.back().substr(0, lines.back().size() / 2);
    }

    globalResultCache().reset();
    std::vector<FaultTrialResult> resumedTrials;
    const CampaignSummary resumed =
        runFaultCampaign(wl, cfg, spec, runner, &resumedTrials);
    EXPECT_EQ(resumed.truncatedLines, 1u);
    EXPECT_EQ(resumed.resumed, spec.trials - 1);
    expectSummariesEqual(full, resumed);

    // And a fresh uninterrupted campaign agrees trial by trial.
    globalResultCache().reset();
    CampaignSpec fresh = spec;
    fresh.checkpointPath.clear();
    std::vector<FaultTrialResult> freshTrials;
    const CampaignSummary direct =
        runFaultCampaign(wl, cfg, fresh, runner, &freshTrials);
    expectSummariesEqual(direct, resumed);
    ASSERT_EQ(freshTrials.size(), resumedTrials.size());
    for (std::size_t i = 0; i < freshTrials.size(); ++i)
        EXPECT_EQ(freshTrials[i].outcome, resumedTrials[i].outcome)
            << i;

    std::remove(path.c_str());
}

// Device-site plans (sm/addr/cta) round-trip through the checkpoint
// codec: a fully-checkpointed campaign resumes without a single new
// fault simulation and without tripping the plan-match validation.
TEST_F(FaultCampaignTest, DeviceSitePlansRoundTripThroughCheckpoint)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 4;
    const ParallelRunner runner(1);

    const std::string path =
        testing::TempDir() + "fault_ckpt_device.jsonl";
    std::remove(path.c_str());

    CampaignSpec spec;
    spec.trials = 10;
    spec.seed = 77;
    spec.sites = validSites(
        cfg, {FaultSite::RfBank, FaultSite::BocEntry,
              FaultSite::L2Line, FaultSite::CtaSched});
    spec.checkpointPath = path;

    std::vector<FaultTrialResult> first;
    runFaultCampaign(wl, cfg, spec, runner, &first);

    globalResultCache().reset();
    const std::uint64_t before = ParallelRunner::simulationsRun();
    std::vector<FaultTrialResult> second;
    const CampaignSummary resumed =
        runFaultCampaign(wl, cfg, spec, runner, &second);
    // Only the clean reference run simulates again.
    EXPECT_EQ(ParallelRunner::simulationsRun() - before, 1u);
    EXPECT_EQ(resumed.resumed, spec.trials);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].plan.describe(), second[i].plan.describe())
            << i;
        EXPECT_EQ(first[i].outcome, second[i].outcome) << i;
    }

    std::remove(path.c_str());
}

// Regression: the healed (repaired-by-refetch) count survives a
// resume. It is persisted per checkpoint row — recomputing it would
// need the simulation the resume exists to skip.
TEST_F(FaultCampaignTest, HealedCountSurvivesResume)
{
    // BTREE at this scale/seed produces refetch-healed trials
    // (asserted below so a workload change cannot hollow the test).
    const Workload wl = workloads::make("BTREE", 0.1);
    const SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    const ParallelRunner runner(1);

    const std::string path =
        testing::TempDir() + "fault_ckpt_healed.jsonl";
    std::remove(path.c_str());

    CampaignSpec spec;
    spec.trials = 20;
    spec.seed = 7;
    spec.sites = {FaultSite::RfBank, FaultSite::BocEntry};
    spec.checkpointPath = path;

    const CampaignSummary fresh =
        runFaultCampaign(wl, cfg, spec, runner);
    ASSERT_GT(fresh.healed, 0u);

    globalResultCache().reset();
    const CampaignSummary resumed =
        runFaultCampaign(wl, cfg, spec, runner);
    EXPECT_EQ(resumed.resumed, spec.trials);
    expectSummariesEqual(fresh, resumed);

    std::remove(path.c_str());
}

// Satellite: transient host errors are retried with backoff; a trial
// that keeps failing degrades to outcome=fatal without sinking the
// campaign, drops out of the AVF denominator, and is given a fresh
// chance on resume.
TEST_F(FaultCampaignTest, TransientHostErrorsRetryThenDegrade)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    const SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    const ParallelRunner runner(1);

    CampaignSpec spec;
    spec.trials = 6;
    spec.seed = 13;
    spec.sites = {FaultSite::RfBank};

    // Reference: no host errors.
    std::vector<FaultTrialResult> refTrials;
    const CampaignSummary ref =
        runFaultCampaign(wl, cfg, spec, runner, &refTrials);
    ASSERT_EQ(ref.fatal, 0u);

    // One flaky trial that heals on its first retry.
    globalResultCache().reset();
    CampaignSpec flaky = spec;
    flaky.retries = 2;
    flaky.injectHostError = [](unsigned trial, unsigned attempt) {
        return trial == 3 && attempt == 0;
    };
    std::vector<FaultTrialResult> flakyTrials;
    const CampaignSummary healed =
        runFaultCampaign(wl, cfg, flaky, runner, &flakyTrials);
    EXPECT_EQ(healed.retries, 1u);
    EXPECT_EQ(healed.fatal, 0u);
    expectSummariesEqual(ref, healed);
    for (std::size_t i = 0; i < refTrials.size(); ++i)
        EXPECT_EQ(refTrials[i].outcome, flakyTrials[i].outcome) << i;

    // A persistently failing trial exhausts the budget and degrades.
    globalResultCache().reset();
    const std::string path =
        testing::TempDir() + "fault_ckpt_fatal.jsonl";
    std::remove(path.c_str());
    CampaignSpec broken = spec;
    broken.retries = 1;
    broken.checkpointPath = path;
    broken.injectHostError = [](unsigned trial, unsigned) {
        return trial == 2;
    };
    const CampaignSummary degraded =
        runFaultCampaign(wl, cfg, broken, runner);
    EXPECT_EQ(degraded.fatal, 1u);
    EXPECT_EQ(degraded.retries, 1u);
    EXPECT_EQ(degraded.masked + degraded.sdc + degraded.detected +
                  degraded.hang,
              spec.trials - 1);
    // Fatal trials drop out of the AVF denominator.
    const unsigned classified = degraded.trials - degraded.fatal;
    EXPECT_DOUBLE_EQ(degraded.avfPct(),
                     100.0 * (classified - degraded.masked) /
                         classified);

    // The fatal row is in the checkpoint, and a resume without the
    // hook re-runs exactly that one trial and matches the reference.
    {
        std::ifstream in(path);
        std::stringstream text;
        text << in.rdbuf();
        EXPECT_NE(text.str().find("\"outcome\":\"fatal\""),
                  std::string::npos);
    }
    globalResultCache().reset();
    CampaignSpec recover = spec;
    recover.checkpointPath = path;
    std::vector<FaultTrialResult> recoveredTrials;
    const CampaignSummary recovered =
        runFaultCampaign(wl, cfg, recover, runner, &recoveredTrials);
    EXPECT_EQ(recovered.resumed, spec.trials - 1);
    EXPECT_EQ(recovered.fatal, 0u);
    expectSummariesEqual(ref, recovered);

    std::remove(path.c_str());
}

// The campaign.* counters are published into globalMetrics() when
// aggregation is on (the --metrics-out path), and not otherwise.
TEST_F(FaultCampaignTest, ExportsCampaignMetrics)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    const SimConfig cfg = configFor(Architecture::BOW_WR, 6);

    CampaignSpec spec;
    spec.trials = 4;
    spec.seed = 3;
    spec.sites = {FaultSite::RfBank};

    globalMetrics().clear();
    const CampaignSummary quiet =
        runFaultCampaign(wl, cfg, spec, ParallelRunner(1));
    EXPECT_FALSE(globalMetrics().has("campaign.trials"));

    MetricsRegistry reg;
    quiet.exportMetrics(reg);
    EXPECT_EQ(reg.counter("campaign.trials"), spec.trials);
    EXPECT_EQ(reg.counter("campaign.masked"), quiet.masked);
    EXPECT_EQ(reg.counter("campaign.sdc"), quiet.sdc);
    EXPECT_EQ(reg.counter("campaign.detected"), quiet.detected);
    EXPECT_EQ(reg.counter("campaign.hang"), quiet.hang);
    EXPECT_EQ(reg.counter("campaign.fatal"), quiet.fatal);
    EXPECT_EQ(reg.counter("campaign.landed"), quiet.landed);
    EXPECT_EQ(reg.value("campaign.avf_pct"), quiet.avfPct());

    setMetricsAggregation(true);
    globalResultCache().reset();
    runFaultCampaign(wl, cfg, spec, ParallelRunner(1));
    EXPECT_TRUE(globalMetrics().has("campaign.trials"));
    EXPECT_EQ(globalMetrics().counter("campaign.trials"),
              spec.trials);
    setMetricsAggregation(false);
    globalMetrics().clear();
}

// Single-SM byte-compatibility guard: a plan derived with a
// FaultPlanContext describing a single-SM device is identical (every
// field, every trial) to the historical context-free derivation.
TEST_F(FaultCampaignTest, SingleSmPlansAreByteCompatible)
{
    const Workload wl = workloads::make("BTREE", kScale);
    const std::vector<FaultSite> sites = {FaultSite::RfBank,
                                          FaultSite::BocEntry};
    FaultPlanContext ctx;
    ctx.ctaPlacements.assign(wl.launch.numWarps, 0);
    ctx.numSms = 1;

    for (unsigned trial = 0; trial < 64; ++trial) {
        const FaultPlan bare =
            makeFaultPlan(42, trial, sites, wl.launch, 5000);
        const FaultPlan withCtx =
            makeFaultPlan(42, trial, sites, wl.launch, 5000, &ctx);
        EXPECT_EQ(bare.site, withCtx.site);
        EXPECT_EQ(bare.warp, withCtx.warp);
        EXPECT_EQ(bare.reg, withCtx.reg);
        EXPECT_EQ(bare.bit, withCtx.bit);
        EXPECT_EQ(bare.cycle, withCtx.cycle);
        EXPECT_EQ(bare.sm, 0u);
        EXPECT_EQ(withCtx.sm, 0u);
        // The " sm<N>" describe() suffix stays off on SM 0.
        EXPECT_EQ(bare.describe(), withCtx.describe());
    }

    // An all-SMs --fault-sms filter on one SM is also the identity.
    FaultPlanContext all = ctx;
    all.sms = {0};
    for (unsigned trial = 0; trial < 16; ++trial) {
        const FaultPlan bare =
            makeFaultPlan(7, trial, sites, wl.launch, 1000);
        const FaultPlan filtered =
            makeFaultPlan(7, trial, sites, wl.launch, 1000, &all);
        EXPECT_EQ(bare.describe(), filtered.describe());
    }
}

// --fault-sms: per-SM flips restrict to warps the clean run placed
// on the listed SMs; an impossible filter is a fatal error.
TEST_F(FaultCampaignTest, SmFilterRestrictsPerSmPlans)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 4;

    CampaignSpec spec;
    spec.trials = 8;
    spec.seed = 11;
    spec.sites = {FaultSite::RfBank};
    spec.sms = {2};

    std::vector<FaultTrialResult> trials;
    runFaultCampaign(wl, cfg, spec, ParallelRunner(1), &trials);
    for (const FaultTrialResult &t : trials)
        EXPECT_EQ(t.plan.sm, 2u) << t.plan.describe();

    CampaignSpec bad = spec;
    bad.sms = {7};
    EXPECT_THROW(
        runFaultCampaign(wl, cfg, bad, ParallelRunner(1)),
        FatalError);
}

// ---- Device fault sites -------------------------------------------

TEST(SharedL2Fault, ProbeLineIsPureAndPrecise)
{
    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 2;
    SharedL2 l2(cfg);

    EXPECT_FALSE(l2.lineResident(0x40));
    l2.access(0x40, /*isStore=*/false, /*now=*/0);
    EXPECT_TRUE(l2.lineResident(0x40));
    // Same line, different word: still resident. Different line: not.
    EXPECT_TRUE(l2.lineResident(0x44));
    EXPECT_FALSE(l2.lineResident(0x40 + 4 * cfg.l2LineBytes));

    // Probing is pure: no load/store accounting moves.
    const std::uint64_t loads = l2.stats().counterValue("loads");
    const std::uint64_t misses = l2.stats().counterValue("misses");
    for (int i = 0; i < 100; ++i)
        l2.lineResident(0x40);
    EXPECT_EQ(l2.stats().counterValue("loads"), loads);
    EXPECT_EQ(l2.stats().counterValue("misses"), misses);
}

// A flip on a resident L2 line corrupts readers while it stays
// resident; eviction refetches the pristine DRAM copy (write-through
// lines are clean) unless a store superseded the corruption.
TEST(SharedL2Fault, FlipHealsOnEvictionUnlessSuperseded)
{
    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 2;
    // Tiny direct-mapped single-bank L2: two sets, so line 0x80 and
    // line 0x180 conflict and the second access evicts the first.
    cfg.l2Banks = 1;
    cfg.l2Ways = 1;
    cfg.l2Bytes = 2 * cfg.l2LineBytes;

    CtaScheduler sched(cfg, {}, 1);

    FaultPlan plan;
    plan.enabled = true;
    plan.site = FaultSite::L2Line;
    plan.addr = 0x80;
    plan.bit = 0;
    plan.cycle = 5;

    {
        // Heal: flip, then evict with the word untouched.
        MemoryStore mem;
        mem.store(MemSpace::Global, 0x80, 7);
        SharedL2 l2(cfg);
        l2.access(0x80, false, 0);
        DeviceFaultInjector dev(plan);
        dev.onCycle(5, mem, &l2, sched);
        EXPECT_TRUE(dev.report().fired);
        EXPECT_TRUE(dev.report().landed);
        EXPECT_EQ(mem.load(MemSpace::Global, 0x80), 7u ^ 1u);

        l2.access(0x180, false, 10);    // conflicting line: evict
        EXPECT_FALSE(l2.lineResident(0x80));
        dev.onCycle(11, mem, &l2, sched);
        EXPECT_EQ(mem.load(MemSpace::Global, 0x80), 7u);
        EXPECT_TRUE(dev.report().repairedByRefetch);
    }
    {
        // Superseded: a store overwrites the corrupt word before the
        // eviction; whatever propagated stands — no heal.
        MemoryStore mem;
        mem.store(MemSpace::Global, 0x80, 7);
        SharedL2 l2(cfg);
        l2.access(0x80, false, 0);
        DeviceFaultInjector dev(plan);
        dev.onCycle(5, mem, &l2, sched);
        mem.store(MemSpace::Global, 0x80, 99);  // write-through store

        l2.access(0x180, false, 10);
        dev.onCycle(11, mem, &l2, sched);
        EXPECT_EQ(mem.load(MemSpace::Global, 0x80), 99u);
        EXPECT_FALSE(dev.report().repairedByRefetch);
    }
    {
        // Not resident at the fault cycle: fired but not landed.
        MemoryStore mem;
        mem.store(MemSpace::Global, 0x80, 7);
        SharedL2 l2(cfg);
        DeviceFaultInjector dev(plan);
        dev.onCycle(5, mem, &l2, sched);
        EXPECT_TRUE(dev.report().fired);
        EXPECT_FALSE(dev.report().landed);
        EXPECT_EQ(mem.load(MemSpace::Global, 0x80), 7u);
    }
}

// End-to-end through the Simulator: an L2 flip that stays resident
// until the drain is silent data corruption the oracle catches.
TEST(SharedL2Fault, ResidentFlipSurfacesAsSdc)
{
    const Workload wl = wrap("l2_reader", l2ReaderLaunch());
    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 2;

    FaultPlan plan;
    plan.enabled = true;
    plan.site = FaultSite::L2Line;
    plan.addr = 0x40;
    plan.bit = 0;
    plan.cycle = 60;    // mid-nop stretch: loaded, not yet re-read

    FaultInjector inj(plan, FaultProtection::None);
    const Simulator sim(cfg);
    const SimResult res = sim.run(wl.launch, &inj);
    EXPECT_TRUE(res.fault.fired);
    EXPECT_TRUE(res.fault.landed);
    EXPECT_FALSE(res.fault.repairedByRefetch);
    // First read saw the pristine word, the re-read the corrupt one,
    // and the corruption survives in final memory.
    for (unsigned w = 0; w < 2; ++w) {
        EXPECT_EQ(res.finalRegs[w][2], 5u) << w;
        EXPECT_EQ(res.finalRegs[w][3], 5u ^ 1u) << w;
    }
    EXPECT_EQ(res.finalMem.load(MemSpace::Global, 0x40), 5u ^ 1u);
}

// CTA-record corruption: an out-of-range firstWarp trips the SmCore
// admission guard (panic — "detected"); an in-range one mis-launches
// and the campaign classifies it via the oracle.
TEST(SharedL2Fault, CtaRecordCorruptionIsDetectedOrClassified)
{
    const Workload wl = wrap("four_warps", fourWarpLaunch());
    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 2;

    // bit 4 walks CTA 1's firstWarp (2) to 18 > numWarps: the
    // admission guard must panic, not scribble.
    FaultPlan plan;
    plan.enabled = true;
    plan.site = FaultSite::CtaSched;
    plan.cta = 1;
    plan.bit = 4;
    plan.cycle = 0;     // RR places everything on the first cycle

    {
        FaultInjector inj(plan, FaultProtection::None);
        const Simulator sim(cfg);
        EXPECT_THROW(sim.run(wl.launch, &inj), PanicError);
    }

    // A flip after placement is fired-but-not-landed (masked). RR
    // places every CTA on cycle 0, so cycle 10 is mid-run but late.
    {
        FaultPlan late = plan;
        late.cycle = 10;
        FaultInjector inj(late, FaultProtection::None);
        const Simulator sim(cfg);
        const SimResult res = sim.run(wl.launch, &inj);
        EXPECT_TRUE(res.fault.fired);
        EXPECT_FALSE(res.fault.landed);
    }

    // Campaign-level: every cta-site trial classifies cleanly and
    // the taxonomy accounts for all of them.
    CampaignSpec spec;
    spec.trials = 12;
    spec.seed = 17;
    spec.sites = {FaultSite::CtaSched};
    std::vector<FaultTrialResult> trials;
    globalResultCache().reset();
    const CampaignSummary s = runFaultCampaign(
        wl, cfg, spec, ParallelRunner(1), &trials);
    EXPECT_EQ(s.masked + s.sdc + s.detected + s.hang, spec.trials);
    EXPECT_EQ(s.fatal, 0u);
    for (const FaultTrialResult &t : trials)
        EXPECT_EQ(t.plan.site, FaultSite::CtaSched);
    globalResultCache().reset();
    ParallelRunner::setDefaultJobs(0);
}

} // namespace
