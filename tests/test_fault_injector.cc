/**
 * @file
 * Fault-injection subsystem tests: plan determinism, cache-key
 * discrimination, end-to-end corruption and protection semantics,
 * watchdog behaviour, fault-tolerant batch execution, and campaign
 * checkpoint/resume. Also runs under ASan+UBSan as the tier-1
 * memory-safety configuration (tests/CMakeLists.txt).
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/watchdog.h"
#include "core/fault_campaign.h"
#include "core/parallel_runner.h"
#include "core/result_cache.h"
#include "workloads/builder.h"
#include "workloads/registry.h"
#include "workloads/snippets.h"

using namespace bow;

namespace {

constexpr double kScale = 0.05;

/** Wrap a hand-built launch as a Workload (what the cache keys on). */
Workload
wrap(const std::string &name, Launch launch)
{
    Workload wl;
    wl.name = name;
    wl.scale = 1.0;
    wl.launch = std::move(launch);
    return wl;
}

/**
 * A kernel whose value lives a long time in the RF: r1 is written
 * early, a long nop stretch follows (so any BOC residency expires),
 * then r2 = r1 + r1 is computed and both stay live to the end.
 * A flip of r1 in the window between write and use must surface in
 * both final registers — a guaranteed SDC for RF-site faults.
 */
Launch
vulnerableKernel()
{
    KernelBuilder kb("vulnerable");
    kb.movImm(1, 1000);
    for (int i = 0; i < 60; ++i)
        kb.nop();
    kb.alu2(Opcode::ADD, 2, 1, 1);
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = 1;
    return launch;
}

class FaultInjectorTest : public ::testing::Test
{
  protected:
    void SetUp() override { globalResultCache().reset(); }
    void TearDown() override
    {
        globalResultCache().reset();
        ParallelRunner::setDefaultJobs(0);
    }
};

TEST_F(FaultInjectorTest, PlanDerivationIsDeterministicAndBounded)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    const std::vector<FaultSite> sites = {FaultSite::RfBank,
                                          FaultSite::BocEntry};
    for (unsigned trial = 0; trial < 64; ++trial) {
        const FaultPlan a =
            makeFaultPlan(42, trial, sites, wl.launch, 5000);
        const FaultPlan b =
            makeFaultPlan(42, trial, sites, wl.launch, 5000);
        EXPECT_TRUE(a.enabled);
        EXPECT_EQ(a.site, b.site);
        EXPECT_EQ(a.warp, b.warp);
        EXPECT_EQ(a.reg, b.reg);
        EXPECT_EQ(a.bit, b.bit);
        EXPECT_EQ(a.cycle, b.cycle);
        EXPECT_LT(a.warp, wl.launch.numWarps);
        EXPECT_LT(a.bit, 32u);
        EXPECT_LT(a.cycle, 5000u);
    }
    // Different seeds diverge somewhere in the first few trials.
    bool differs = false;
    for (unsigned trial = 0; trial < 8 && !differs; ++trial) {
        const FaultPlan a =
            makeFaultPlan(42, trial, sites, wl.launch, 5000);
        const FaultPlan b =
            makeFaultPlan(43, trial, sites, wl.launch, 5000);
        differs = a.site != b.site || a.warp != b.warp ||
            a.reg != b.reg || a.bit != b.bit || a.cycle != b.cycle;
    }
    EXPECT_TRUE(differs);
}

TEST_F(FaultInjectorTest, CacheKeyDiscriminatesFaultPlans)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    const SimConfig cfg = configFor(Architecture::BOW_WR, 6);

    // Disabled plan == clean key (2-arg overload).
    EXPECT_EQ(simCacheKey(wl, cfg),
              simCacheKey(wl, cfg, FaultPlan{}));

    FaultPlan p;
    p.enabled = true;
    p.site = FaultSite::RfBank;
    p.warp = 1;
    p.reg = 5;
    p.bit = 7;
    p.cycle = 100;
    EXPECT_NE(simCacheKey(wl, cfg, p), simCacheKey(wl, cfg));

    // Every plan field discriminates.
    FaultPlan q = p;
    q.bit = 8;
    EXPECT_NE(simCacheKey(wl, cfg, p), simCacheKey(wl, cfg, q));
    q = p;
    q.cycle = 101;
    EXPECT_NE(simCacheKey(wl, cfg, p), simCacheKey(wl, cfg, q));
    q = p;
    q.site = FaultSite::BocEntry;
    EXPECT_NE(simCacheKey(wl, cfg, p), simCacheKey(wl, cfg, q));

    // Protection is part of the clean key (it changes energy).
    SimConfig prot = cfg;
    prot.faultProtection = FaultProtection::Parity;
    EXPECT_NE(simCacheKey(wl, cfg), simCacheKey(wl, prot));
}

TEST_F(FaultInjectorTest, RfFlipCorruptsDependentComputation)
{
    const Workload wl = wrap("vulnerable", vulnerableKernel());
    const FunctionalResult golden =
        runFunctional(wl.launch, 100000, false);

    SimJob job(wl, Architecture::Baseline);
    job.fault.enabled = true;
    job.fault.site = FaultSite::RfBank;
    job.fault.warp = 0;
    job.fault.reg = 1;
    job.fault.bit = 3;
    job.fault.cycle = 30;   // mid-nop-stretch: r1 written, unused yet

    const SimResult res = ParallelRunner(1).runOne(job);
    EXPECT_TRUE(res.fault.fired);
    EXPECT_TRUE(res.fault.landed);
    // r1 flipped, and r2 = r1 + r1 computed from the corrupt value.
    EXPECT_EQ(res.finalRegs[0][1], golden.finalRegs[0][1] ^ (1u << 3));
    EXPECT_EQ(res.finalRegs[0][2],
              (golden.finalRegs[0][1] ^ (1u << 3)) * 2);
}

TEST_F(FaultInjectorTest, MultiSmCampaignRunsAndDerivesSmPlacement)
{
    // PR lifted the historical single-SM guard: campaigns now run on
    // the GPU path, with per-SM plans anchored to the clean run's
    // CTA placements and the same (warp, reg, bit, cycle) draws as
    // the single-SM derivation — only FaultPlan::sm is new, and it
    // is derived, never drawn.
    const Workload wl = workloads::make("VECTORADD", kScale);
    CampaignSpec spec;
    spec.trials = 6;
    spec.seed = 5;
    spec.sites = {FaultSite::RfBank};

    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    cfg.numSms = 2;
    std::vector<FaultTrialResult> trials;
    const CampaignSummary s =
        runFaultCampaign(wl, cfg, spec, ParallelRunner(1), &trials);
    EXPECT_EQ(s.masked + s.sdc + s.detected + s.hang + s.fatal,
              spec.trials);
    EXPECT_EQ(s.fatal, 0u);

    SimConfig single = cfg;
    single.numSms = 1;
    std::vector<FaultTrialResult> singleTrials;
    globalResultCache().reset();
    runFaultCampaign(wl, single, spec, ParallelRunner(1),
                     &singleTrials);
    ASSERT_EQ(trials.size(), singleTrials.size());
    for (std::size_t i = 0; i < trials.size(); ++i) {
        // The cycle draw is bounded by each config's own clean cycle
        // count, so only the structural draws must agree.
        EXPECT_EQ(trials[i].plan.warp, singleTrials[i].plan.warp) << i;
        EXPECT_EQ(trials[i].plan.reg, singleTrials[i].plan.reg) << i;
        EXPECT_EQ(trials[i].plan.bit, singleTrials[i].plan.bit) << i;
        EXPECT_LT(trials[i].plan.sm, 2u) << i;
        EXPECT_EQ(singleTrials[i].plan.sm, 0u) << i;
    }
}

TEST_F(FaultInjectorTest, ProtectionConvertsOutcomes)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    const ParallelRunner runner(1);

    CampaignSpec spec;
    spec.trials = 24;
    spec.seed = 99;
    spec.sites = {FaultSite::BocEntry};

    SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    std::vector<FaultTrialResult> none;
    const CampaignSummary sNone =
        runFaultCampaign(wl, cfg, spec, runner, &none);

    cfg.faultProtection = FaultProtection::Parity;
    const CampaignSummary sParity =
        runFaultCampaign(wl, cfg, spec, runner);

    cfg.faultProtection = FaultProtection::Secded;
    const CampaignSummary sSecded =
        runFaultCampaign(wl, cfg, spec, runner);

    // Parity detects every landed BOC flip: no silent corruption.
    EXPECT_EQ(sParity.sdc, 0u);
    EXPECT_EQ(sParity.hang, 0u);
    // SECDED corrects them: everything is masked.
    EXPECT_EQ(sSecded.sdc, 0u);
    EXPECT_EQ(sSecded.detected, 0u);
    EXPECT_EQ(sSecded.masked, spec.trials);
    // Unprotected BOW-WR must show some non-masked outcome for the
    // comparison to mean anything (dirty entries are the only copy).
    EXPECT_GT(sNone.sdc + sNone.detected + sNone.hang, 0u);
}

TEST_F(FaultInjectorTest, CampaignIsDeterministicAcrossJobCounts)
{
    const Workload wl = workloads::make("BTREE", kScale);
    CampaignSpec spec;
    spec.trials = 16;
    spec.seed = 7;
    spec.sites = {FaultSite::RfBank, FaultSite::BocEntry};
    const SimConfig cfg = configFor(Architecture::BOW_WR, 6);

    std::vector<FaultTrialResult> serial;
    const CampaignSummary a =
        runFaultCampaign(wl, cfg, spec, ParallelRunner(1), &serial);

    globalResultCache().reset();
    std::vector<FaultTrialResult> parallel;
    const CampaignSummary b =
        runFaultCampaign(wl, cfg, spec, ParallelRunner(4), &parallel);

    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.hang, b.hang);
    EXPECT_EQ(a.landed, b.landed);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].outcome, parallel[i].outcome) << i;
        EXPECT_EQ(serial[i].landed, parallel[i].landed) << i;
    }
}

// Acceptance: a batch with one hanging and one throwing simulation
// completes, reporting both per-item failures plus every other
// result.
TEST_F(FaultInjectorTest, RunAllSurvivesHangsAndThrows)
{
    const Workload good = workloads::make("VECTORADD", kScale);
    const Workload spin = wrap("chain_spin",
                               snippets::chainLoop(1, 1000000));

    std::vector<SimJob> batch;
    batch.emplace_back(good, Architecture::Baseline);        // ok
    SimJob hanging(spin, Architecture::Baseline);
    hanging.watchdog.cycleBudget = 10;                       // hang
    batch.push_back(hanging);
    SimJob fatal(spin, Architecture::Baseline);
    fatal.config.maxCycles = 10;                             // fatal
    batch.push_back(fatal);
    batch.emplace_back(good, Architecture::BOW, 6);          // ok

    for (unsigned jobs : {1u, 4u}) {
        globalResultCache().reset();
        const auto outcomes = ParallelRunner(jobs).runAll(batch);
        ASSERT_EQ(outcomes.size(), 4u);
        EXPECT_TRUE(outcomes[0].ok());
        ASSERT_FALSE(outcomes[1].ok());
        EXPECT_EQ(outcomes[1].error().kind, SimError::Kind::Hang);
        ASSERT_FALSE(outcomes[2].ok());
        EXPECT_EQ(outcomes[2].error().kind, SimError::Kind::Fatal);
        EXPECT_TRUE(outcomes[3].ok());
        EXPECT_GT(outcomes[3].value().stats.cycles, 0u);
    }

    // The strict API surfaces the lowest-indexed failure instead.
    EXPECT_THROW(ParallelRunner(4).run(batch), HangError);
}

TEST_F(FaultInjectorTest, OutcomeAccessorsPanicOnMisuse)
{
    const SimOutcome fail = SimOutcome::failure(
        SimError{SimError::Kind::Hang, "stuck"});
    EXPECT_FALSE(fail.ok());
    EXPECT_EQ(fail.error().kind, SimError::Kind::Hang);
    EXPECT_THROW(fail.value(), PanicError);

    const SimOutcome unset;
    EXPECT_FALSE(unset.ok());
    EXPECT_EQ(unset.error().message, "job never executed");
}

// Acceptance: killing a campaign mid-run and re-invoking with the
// same seed resumes from the checkpoint without re-running the
// completed trials.
TEST_F(FaultInjectorTest, CampaignResumesFromCheckpoint)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    const SimConfig cfg = configFor(Architecture::BOW_WR, 6);
    const ParallelRunner runner(1);

    const std::string path =
        testing::TempDir() + "fault_ckpt_resume.jsonl";
    std::remove(path.c_str());

    CampaignSpec spec;
    spec.seed = 21;
    spec.sites = {FaultSite::RfBank, FaultSite::BocEntry};
    spec.checkpointPath = path;

    // "Killed" campaign: only the first 6 trials ran.
    spec.trials = 6;
    runFaultCampaign(wl, cfg, spec, runner);

    // Resume to 12. Exactly the 6 missing fault trials simulate
    // (plus the one clean reference run; the oracle is functional).
    globalResultCache().reset();
    const std::uint64_t before = ParallelRunner::simulationsRun();
    spec.trials = 12;
    std::vector<FaultTrialResult> resumedTrials;
    const CampaignSummary resumed =
        runFaultCampaign(wl, cfg, spec, runner, &resumedTrials);
    EXPECT_EQ(ParallelRunner::simulationsRun() - before, 7u);
    EXPECT_EQ(resumed.resumed, 6u);

    // The resumed summary equals a fresh uninterrupted campaign.
    globalResultCache().reset();
    CampaignSpec fresh = spec;
    fresh.checkpointPath.clear();
    std::vector<FaultTrialResult> freshTrials;
    const CampaignSummary direct =
        runFaultCampaign(wl, cfg, fresh, runner, &freshTrials);
    EXPECT_EQ(direct.masked, resumed.masked);
    EXPECT_EQ(direct.sdc, resumed.sdc);
    EXPECT_EQ(direct.detected, resumed.detected);
    EXPECT_EQ(direct.hang, resumed.hang);
    EXPECT_EQ(direct.landed, resumed.landed);
    ASSERT_EQ(freshTrials.size(), resumedTrials.size());
    for (std::size_t i = 0; i < freshTrials.size(); ++i)
        EXPECT_EQ(freshTrials[i].outcome, resumedTrials[i].outcome)
            << i;

    // A different seed refuses the stale checkpoint.
    CampaignSpec wrong = spec;
    wrong.seed = 22;
    EXPECT_THROW(runFaultCampaign(wl, cfg, wrong, runner),
                 FatalError);

    std::remove(path.c_str());
}

TEST(WatchdogTest, CycleBudgetTripsDeterministically)
{
    Watchdog::Limits limits;
    limits.cycleBudget = 100;
    const Watchdog dog(limits);
    EXPECT_NO_THROW(dog.checkpoint(0));
    EXPECT_NO_THROW(dog.checkpoint(99));
    EXPECT_THROW(dog.checkpoint(100), HangError);
    EXPECT_THROW(dog.checkpoint(5000), HangError);
}

TEST(WatchdogTest, CancellationAbortsAtNextCheckpoint)
{
    Watchdog::Limits limits;
    limits.cycleBudget = 1000000;
    Watchdog dog(limits);
    EXPECT_NO_THROW(dog.checkpoint(1));
    dog.cancel();
    EXPECT_TRUE(dog.cancelled());
    EXPECT_THROW(dog.checkpoint(2), HangError);
}

TEST(WatchdogTest, NoLimitsMeansNoTrips)
{
    const Watchdog dog(Watchdog::Limits{});
    EXPECT_FALSE(dog.limits().any());
    EXPECT_NO_THROW(dog.checkpoint(1u << 30));
}

} // namespace
