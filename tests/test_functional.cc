/**
 * @file
 * Functional-runner tests: full kernels, traces, loop iteration
 * counts, warp divergence and the runaway guard.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/assembler.h"
#include "sm/functional.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

TEST(Functional, LoopRunsExpectedIterations)
{
    const unsigned iters = 9;
    const Launch launch = snippets::chainLoop(1, iters);
    const auto fn = runFunctional(launch);
    ASSERT_EQ(fn.traces.size(), 1u);
    // Counter register r1 holds the iteration count at the end.
    EXPECT_EQ(fn.finalRegs[0][1], iters);
}

TEST(Functional, TraceRecordsDynamicStream)
{
    Kernel k = assemble(
        "mov $r1, 0;\n"
        "loop:\n"
        "add $r1, $r1, 1;\n"
        "setp.lt.s32 $p0, $r1, 3;\n"
        "@$p0 bra loop;\n"
        "exit;");
    Launch launch;
    launch.kernel = k;
    launch.numWarps = 1;
    const auto fn = runFunctional(launch);
    // 1 mov + 3 x (add, setp, bra) + exit = 11 dynamic instructions.
    EXPECT_EQ(fn.traces[0].insts.size(), 11u);
    EXPECT_EQ(fn.dynamicInsts, 11u);
    // The bra's last execution fell through.
    EXPECT_EQ(fn.traces[0].insts.back().idx, 4u);
}

TEST(Functional, TraceMarksGuardSuppressedWrites)
{
    Kernel k = assemble(
        "setp.eq.s32 $p0, $r1, 99;\n" // false: r1 == 0
        "@$p0 mov $r2, 1;\n"
        "exit;");
    Launch launch;
    launch.kernel = k;
    launch.numWarps = 1;
    const auto fn = runFunctional(launch);
    ASSERT_EQ(fn.traces[0].insts.size(), 3u);
    EXPECT_TRUE(fn.traces[0].insts[0].wrote);
    EXPECT_FALSE(fn.traces[0].insts[1].wrote);
}

TEST(Functional, WarpsDivergeByWarpId)
{
    const Launch launch = snippets::branchDiamond(4);
    const auto fn = runFunctional(launch);
    // Even warps: wid + 100; odd warps: wid * 7 (see snippet).
    EXPECT_EQ(fn.finalMem.load(MemSpace::Global, 0x8000 + 0 * 4),
              100u);
    EXPECT_EQ(fn.finalMem.load(MemSpace::Global, 0x8000 + 1 * 4), 7u);
    EXPECT_EQ(fn.finalMem.load(MemSpace::Global, 0x8000 + 2 * 4),
              102u);
    EXPECT_EQ(fn.finalMem.load(MemSpace::Global, 0x8000 + 3 * 4),
              21u);
}

TEST(Functional, VaddComputesSums)
{
    const Launch launch = snippets::tinyVadd(2, 4);
    const auto fn = runFunctional(launch);
    // c[i] = a[i] + b[i] where a and b are the deterministic
    // background values; check one element per warp.
    for (WarpId w = 0; w < 2; ++w) {
        const std::uint32_t base = 0x1000 + (w << 12);
        const Value a = fn.finalMem.load(MemSpace::Global, base);
        const Value b = fn.finalMem.load(MemSpace::Global,
                                         base + 0x100000);
        EXPECT_EQ(fn.finalMem.load(MemSpace::Global, base + 0x200000),
                  a + b);
    }
}

TEST(Functional, InitialRegistersApplied)
{
    Kernel k = assemble("add $r1, $r2, $r3; exit;");
    Launch launch;
    launch.kernel = k;
    launch.numWarps = 2;
    launch.initRegs = {{2, 10}, {3, 20}};
    const auto fn = runFunctional(launch);
    EXPECT_EQ(fn.finalRegs[0][1], 30u);
    EXPECT_EQ(fn.finalRegs[1][1], 30u);
}

TEST(Functional, InitialMemoryApplied)
{
    Kernel k = assemble("ld.global $r1, [$r2+0x40]; exit;");
    Launch launch;
    launch.kernel = k;
    launch.numWarps = 1;
    launch.initMem = {{MemSpace::Global, 0x40, 4242}};
    const auto fn = runFunctional(launch);
    EXPECT_EQ(fn.finalRegs[0][1], 4242u);
}

TEST(Functional, RunawayKernelIsFatal)
{
    Kernel k = assemble(
        "loop:\n"
        "bra loop;\n"
        "exit;");
    Launch launch;
    launch.kernel = k;
    launch.numWarps = 1;
    EXPECT_THROW(runFunctional(launch, /*maxPerWarp=*/1000),
                 FatalError);
}

TEST(Functional, ZeroWarpLaunchIsFatal)
{
    Launch launch = snippets::tinyVadd(1, 1);
    launch.numWarps = 0;
    EXPECT_THROW(runFunctional(launch), FatalError);
}

TEST(Functional, TracesCanBeDisabled)
{
    const auto fn = runFunctional(snippets::tinyVadd(2, 4), 100000,
                                  /*recordTraces=*/false);
    EXPECT_TRUE(fn.traces[0].insts.empty());
    EXPECT_GT(fn.dynamicInsts, 0u);
}

TEST(Functional, Fig6SnippetExecutes)
{
    const auto fn = runFunctional(snippets::btreeSnippet());
    ASSERT_EQ(fn.traces.size(), 1u);
    EXPECT_EQ(fn.traces[0].insts.size(), 14u);
    // set.ne compares two distinct computed values; p0 ends up 0/1.
    EXPECT_LE(fn.finalRegs[0][predReg(0)], 1u);
}

} // namespace
} // namespace bow
