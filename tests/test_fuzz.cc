/**
 * @file
 * Differential fuzzing: randomly generated kernels (independent of
 * the workload generators) are executed under every architecture and
 * window size, and each timing run must reproduce the functional
 * model's architectural results exactly. This hammers the BOC
 * forwarding/eviction corner cases (shared fetches, capacity
 * pressure, guarded writes, branches) far beyond the hand-written
 * tests.
 */

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "core/sweep.h"
#include "tests/fuzz_kernels.h"

namespace bow {
namespace {

/** The shared generator (tests/fuzz_kernels.h), kept under its
 *  historical local name. */
Launch
randomKernel(std::uint64_t seed)
{
    return fuzzKernelLaunch(seed);
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSweep, AllArchitecturesMatchFunctional)
{
    const Launch launch = randomKernel(GetParam());
    for (auto arch : {Architecture::Baseline, Architecture::RFC,
                      Architecture::BOW, Architecture::BOW_WR,
                      Architecture::BOW_WR_OPT}) {
        for (unsigned iw : {2u, 3u, 5u}) {
            if (arch == Architecture::Baseline && iw != 3)
                continue;
            Simulator sim(configFor(arch, iw));
            ASSERT_NO_THROW(sim.verifyAgainstFunctional(launch))
                << archName(arch) << " iw=" << iw << " seed="
                << GetParam();
        }
    }
}

TEST_P(FuzzSweep, TinyBocsStayCorrect)
{
    const Launch launch = randomKernel(GetParam());
    for (unsigned cap : {2u, 3u, 4u}) {
        Simulator sim(configFor(Architecture::BOW_WR_OPT, 3, cap));
        ASSERT_NO_THROW(sim.verifyAgainstFunctional(launch))
            << "cap=" << cap << " seed=" << GetParam();
    }
}

TEST_P(FuzzSweep, ExtendedWindowStaysCorrect)
{
    const Launch launch = randomKernel(GetParam());
    SimConfig config = configFor(Architecture::BOW_WR, 4, 6);
    config.extendedWindow = true;
    Simulator sim(config);
    ASSERT_NO_THROW(sim.verifyAgainstFunctional(launch))
        << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(Fuzz, CrossGenerationConfigsStayCorrect)
{
    // The paper repeats its study on Fermi and Volta; our presets
    // must uphold the same correctness invariant.
    const Launch launch = randomKernel(4242);
    for (SimConfig base : {SimConfig::fermi(), SimConfig::volta(),
                           SimConfig::titanXPascal()}) {
        for (auto arch : {Architecture::Baseline,
                          Architecture::BOW_WR_OPT}) {
            SimConfig config = base;
            config.arch = arch;
            if (arch != Architecture::Baseline &&
                config.numCollectors < config.maxResidentWarps) {
                config.numCollectors = config.maxResidentWarps;
            }
            Simulator sim(config);
            ASSERT_NO_THROW(sim.verifyAgainstFunctional(launch))
                << archName(arch);
        }
    }
}

} // namespace
} // namespace bow
