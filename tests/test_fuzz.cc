/**
 * @file
 * Differential fuzzing: randomly generated kernels (independent of
 * the workload generators) are executed under every architecture and
 * window size, and each timing run must reproduce the functional
 * model's architectural results exactly. This hammers the BOC
 * forwarding/eviction corner cases (shared fetches, capacity
 * pressure, guarded writes, branches) far beyond the hand-written
 * tests.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/builder.h"

namespace bow {
namespace {

/** Build a small random-but-valid kernel from @p seed. */
Launch
randomKernel(std::uint64_t seed)
{
    Rng rng(seed * 0x2545F4914F6CDD1Dull + 99);
    KernelBuilder kb("fuzz_" + std::to_string(seed));

    // Registers r0..r11; r0 counter, r1 limit, rest data.
    const unsigned iters = 2 + static_cast<unsigned>(rng.below(6));
    kb.movImm(0, 0);
    kb.movImm(1, iters);
    for (RegId r = 2; r < 12; ++r)
        kb.movImm(r, static_cast<std::uint32_t>(rng.next()));
    // r12: per-warp memory offset so warps never race.
    kb.movSpecial(12, SpecialReg::WARP_ID);
    kb.alu2Imm(Opcode::SHL, 12, 12, 12);

    auto loop = kb.newLabel();
    kb.bind(loop);

    const unsigned bodyLen = 6 + static_cast<unsigned>(rng.below(26));
    auto dataReg = [&] {
        return static_cast<RegId>(2 + rng.below(10));
    };
    unsigned pendingSkip = 0;
    KernelBuilder::Label skipLabel;
    for (unsigned i = 0; i < bodyLen; ++i) {
        if (pendingSkip && --pendingSkip == 0)
            kb.bind(skipLabel);
        switch (rng.below(10)) {
          case 0:
            kb.movImm(dataReg(),
                      static_cast<std::uint32_t>(rng.next()));
            break;
          case 1:
            kb.alu1(Opcode::NEG, dataReg(), dataReg());
            break;
          case 2:
            kb.mad(dataReg(), dataReg(), dataReg(), dataReg());
            break;
          case 3: {
            // Shared-memory access, warp-disjoint via the r12 offset.
            const RegId addr = dataReg();
            kb.alu2Imm(Opcode::AND, addr, dataReg(), 0xFFC);
            kb.alu2(Opcode::ADD, addr, addr, 12);
            if (rng.chance(0.5))
                kb.load(Opcode::LD_SHARED, dataReg(), addr, 0);
            else
                kb.store(Opcode::ST_SHARED, addr, 0, dataReg());
            break;
          }
          case 4:
            kb.alu1(Opcode::SQRT, dataReg(), dataReg());
            break;
          case 5:
            if (pendingSkip == 0 && i + 3 < bodyLen) {
                // Guarded forward skip.
                kb.setpImm(CondCode::LT, predReg(1), dataReg(), 0);
                skipLabel = kb.newLabel();
                kb.bra(skipLabel, predReg(1));
                pendingSkip = 2 + static_cast<unsigned>(rng.below(3));
                break;
            }
            [[fallthrough]];
          default: {
            static const Opcode ops[] = {Opcode::ADD, Opcode::SUB,
                                         Opcode::MUL, Opcode::XOR,
                                         Opcode::MIN, Opcode::SHR};
            kb.alu2(ops[rng.below(std::size(ops))], dataReg(),
                    dataReg(), dataReg());
            break;
          }
        }
    }
    if (pendingSkip)
        kb.bind(skipLabel);

    kb.alu2Imm(Opcode::ADD, 0, 0, 1);
    kb.setp(CondCode::LT, predReg(0), 0, 1);
    kb.bra(loop, predReg(0));
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = 1 + static_cast<unsigned>(rng.below(40));
    return launch;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSweep, AllArchitecturesMatchFunctional)
{
    const Launch launch = randomKernel(GetParam());
    for (auto arch : {Architecture::Baseline, Architecture::RFC,
                      Architecture::BOW, Architecture::BOW_WR,
                      Architecture::BOW_WR_OPT}) {
        for (unsigned iw : {2u, 3u, 5u}) {
            if (arch == Architecture::Baseline && iw != 3)
                continue;
            Simulator sim(configFor(arch, iw));
            ASSERT_NO_THROW(sim.verifyAgainstFunctional(launch))
                << archName(arch) << " iw=" << iw << " seed="
                << GetParam();
        }
    }
}

TEST_P(FuzzSweep, TinyBocsStayCorrect)
{
    const Launch launch = randomKernel(GetParam());
    for (unsigned cap : {2u, 3u, 4u}) {
        Simulator sim(configFor(Architecture::BOW_WR_OPT, 3, cap));
        ASSERT_NO_THROW(sim.verifyAgainstFunctional(launch))
            << "cap=" << cap << " seed=" << GetParam();
    }
}

TEST_P(FuzzSweep, ExtendedWindowStaysCorrect)
{
    const Launch launch = randomKernel(GetParam());
    SimConfig config = configFor(Architecture::BOW_WR, 4, 6);
    config.extendedWindow = true;
    Simulator sim(config);
    ASSERT_NO_THROW(sim.verifyAgainstFunctional(launch))
        << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(Fuzz, CrossGenerationConfigsStayCorrect)
{
    // The paper repeats its study on Fermi and Volta; our presets
    // must uphold the same correctness invariant.
    const Launch launch = randomKernel(4242);
    for (SimConfig base : {SimConfig::fermi(), SimConfig::volta(),
                           SimConfig::titanXPascal()}) {
        for (auto arch : {Architecture::Baseline,
                          Architecture::BOW_WR_OPT}) {
            SimConfig config = base;
            config.arch = arch;
            if (arch != Architecture::Baseline &&
                config.numCollectors < config.maxResidentWarps) {
                config.numCollectors = config.maxResidentWarps;
            }
            Simulator sim(config);
            ASSERT_NO_THROW(sim.verifyAgainstFunctional(launch))
                << archName(arch);
        }
    }
}

} // namespace
} // namespace bow
