/**
 * @file
 * The multi-SM validation layer (docs/ARCHITECTURE.md "Multi-SM
 * model"). Three families of guarantees:
 *
 *  - Differential parity: GpuCore with numSms=1 reproduces the legacy
 *    single-SM Simulator path bit-for-bit on the same nine
 *    workload/architecture cases the golden-stats gate pins
 *    (bench/metrics_regress.cc), down to every exported metric.
 *
 *  - Property/fuzz invariance: for seeded random kernels whose warps
 *    touch disjoint memory, the architectural results (registers and
 *    memory) are independent of the SM count and the CTA placement
 *    policy, and byte-identical across host job counts.
 *
 *  - CTA-scheduler and watchdog edge cases: more CTAs than SMs,
 *    zero-warp launches, occupancy-capped placement, and the per-SM
 *    watchdog scoping (a hung SM names itself; finished SMs stop
 *    consuming cycle budget).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/watchdog.h"
#include "compiler/writeback_tagger.h"
#include "core/parallel_runner.h"
#include "core/result_cache.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "gpu/cta_scheduler.h"
#include "gpu/gpu_core.h"
#include "tests/fuzz_kernels.h"
#include "workloads/registry.h"

namespace bow {
namespace {

constexpr double kScale = 0.05; // pinned like the golden gate

/** The nine golden-gate cases (bench/metrics_regress.cc). */
struct ParityCase
{
    const char *workload;
    Architecture arch;
};

const ParityCase kParityCases[] = {
    {"VECTORADD", Architecture::Baseline},
    {"VECTORADD", Architecture::BOW_WR},
    {"VECTORADD", Architecture::BOW_WR_OPT},
    {"BFS", Architecture::Baseline},
    {"BFS", Architecture::BOW_WR},
    {"BFS", Architecture::RFC},
    {"BTREE", Architecture::Baseline},
    {"BTREE", Architecture::BOW_WR},
    {"BTREE", Architecture::BOW_WR_OPT},
};

void
expectStatsEqual(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ocCyclesMem, b.ocCyclesMem);
    EXPECT_EQ(a.ocCyclesNonMem, b.ocCyclesNonMem);
    EXPECT_EQ(a.totalCyclesMem, b.totalCyclesMem);
    EXPECT_EQ(a.totalCyclesNonMem, b.totalCyclesNonMem);
    EXPECT_EQ(a.instsMem, b.instsMem);
    EXPECT_EQ(a.instsNonMem, b.instsNonMem);
    EXPECT_EQ(a.rfReads, b.rfReads);
    EXPECT_EQ(a.rfWrites, b.rfWrites);
    EXPECT_EQ(a.bocForwards, b.bocForwards);
    EXPECT_EQ(a.bocDeposits, b.bocDeposits);
    EXPECT_EQ(a.bocResultWrites, b.bocResultWrites);
    EXPECT_EQ(a.rfcReads, b.rfcReads);
    EXPECT_EQ(a.rfcWrites, b.rfcWrites);
    EXPECT_EQ(a.consolidatedWrites, b.consolidatedWrites);
    EXPECT_EQ(a.transientDrops, b.transientDrops);
    EXPECT_EQ(a.safetyWrites, b.safetyWrites);
    EXPECT_EQ(a.destRfOnly, b.destRfOnly);
    EXPECT_EQ(a.destBocOnly, b.destBocOnly);
    EXPECT_EQ(a.destBocAndRf, b.destBocAndRf);
    EXPECT_EQ(a.srcOperandHist, b.srcOperandHist);
    EXPECT_EQ(a.bocOccupancyHist, b.bocOccupancyHist);
    EXPECT_EQ(a.bankReadConflicts, b.bankReadConflicts);
    EXPECT_EQ(a.bankWriteConflicts, b.bankWriteConflicts);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.peakResident, b.peakResident);
}

/** Every metric GpuCore exports must exist, with the same kind and
 *  value, in the Simulator result. */
void
expectMetricsSubset(const MetricsRegistry &gpu,
                    const MetricsRegistry &sim)
{
    for (const std::string &name : gpu.names()) {
        ASSERT_TRUE(sim.has(name)) << name;
        ASSERT_EQ(gpu.kindOf(name), sim.kindOf(name)) << name;
        switch (gpu.kindOf(name)) {
          case MetricKind::Counter:
            EXPECT_EQ(gpu.counter(name), sim.counter(name)) << name;
            break;
          case MetricKind::Value:
            EXPECT_EQ(gpu.value(name), sim.value(name)) << name;
            break;
          case MetricKind::Hist:
            EXPECT_EQ(gpu.hist(name), sim.hist(name)) << name;
            break;
        }
    }
}

class GpuParity : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GpuParity, OneSmMatchesLegacySimulatorExactly)
{
    const ParityCase &c = kParityCases[GetParam()];
    const Workload wl = workloads::make(c.workload, kScale);
    const SimConfig config = configFor(c.arch);
    ASSERT_EQ(config.numSms, 1u);

    // Reference: the legacy single-SM path inside Simulator::run.
    Simulator sim(config);
    const SimResult ref = sim.run(wl.launch);

    // Candidate: the GPU-level model, driven directly, with the same
    // compiler preprocessing Simulator applies for BOW-WR (compiler).
    Launch launch = wl.launch;
    if (config.arch == Architecture::BOW_WR_OPT) {
        if (launch.warpKernels.empty()) {
            tagWritebacks(launch.kernel, config.windowSize);
        } else {
            for (Kernel &k : launch.warpKernels)
                tagWritebacks(k, config.windowSize);
        }
    }
    GpuCore gpu(config, launch);
    const RunStats stats = gpu.run();

    expectStatsEqual(stats, ref.stats);
    ASSERT_EQ(gpu.finalRegs().size(), ref.finalRegs.size());
    for (std::size_t w = 0; w < ref.finalRegs.size(); ++w)
        EXPECT_EQ(gpu.finalRegs()[w], ref.finalRegs[w]) << "warp " << w;
    EXPECT_TRUE(gpu.memory().contentsEqual(ref.finalMem));

    MetricsRegistry gpuMetrics;
    gpu.exportMetrics(gpuMetrics);
    expectMetricsSubset(gpuMetrics, ref.metrics);
}

INSTANTIATE_TEST_SUITE_P(GoldenCases, GpuParity,
                         ::testing::Range<std::size_t>(
                             0, std::size(kParityCases)));

// ---------------------------------------------------------------------
// Property/fuzz layer: SM-count and placement invariance.
// ---------------------------------------------------------------------

class GpuFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GpuFuzz, ResultsInvariantToSmCountAndPolicy)
{
    Launch launch = fuzzKernelLaunch(GetParam());
    launch.warpsPerCta =
        1 + static_cast<unsigned>(GetParam() % 4);

    const FunctionalResult oracle =
        runFunctional(launch, 4'000'000, /*recordTraces=*/false);

    for (unsigned numSms : {1u, 2u, 4u}) {
        for (CtaPolicy policy :
             {CtaPolicy::RoundRobin, CtaPolicy::LooseRoundRobin}) {
            SimConfig config = configFor(Architecture::BOW_WR);
            config.numSms = numSms;
            config.ctaPolicy = policy;
            Simulator sim(config);
            const SimResult res = sim.run(launch);

            ASSERT_EQ(res.finalRegs.size(), oracle.finalRegs.size());
            for (std::size_t w = 0; w < oracle.finalRegs.size(); ++w) {
                ASSERT_EQ(res.finalRegs[w], oracle.finalRegs[w])
                    << "seed=" << GetParam() << " numSms=" << numSms
                    << " policy=" << ctaPolicyName(policy)
                    << " warp=" << w;
            }
            ASSERT_TRUE(res.finalMem.contentsEqual(oracle.finalMem))
                << "seed=" << GetParam() << " numSms=" << numSms
                << " policy=" << ctaPolicyName(policy);
        }
    }
}

TEST_P(GpuFuzz, DeterministicAcrossHostJobCounts)
{
    // Two fuzz kernels per seed, each under 1/2/4 SMs, simulated as
    // one batch at --jobs 1 and again at --jobs 4. Host threading
    // must not leak into any metric (the SM-stepping order is the
    // arbitration rule, not the thread schedule).
    std::vector<Workload> wls;
    for (std::uint64_t s : {GetParam(), GetParam() + 1000}) {
        Workload wl;
        wl.name = strf("fuzz_", s);
        wl.launch = fuzzKernelLaunch(s);
        wl.launch.warpsPerCta = 2;
        wls.push_back(std::move(wl));
    }

    auto batch = [&] {
        std::vector<SimJob> jobs;
        for (const Workload &wl : wls) {
            for (unsigned numSms : {1u, 2u, 4u}) {
                SimConfig config = configFor(Architecture::BOW_WR);
                config.numSms = numSms;
                jobs.emplace_back(wl, config);
            }
        }
        return ParallelRunner().run(jobs);
    };

    globalResultCache().reset();
    ParallelRunner::setDefaultJobs(1);
    const auto serial = batch();
    globalResultCache().reset();
    ParallelRunner::setDefaultJobs(4);
    const auto parallel = batch();
    ParallelRunner::setDefaultJobs(0); // restore auto

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectStatsEqual(serial[i].stats, parallel[i].stats);
        EXPECT_EQ(serial[i].finalRegs, parallel[i].finalRegs) << i;
        EXPECT_TRUE(serial[i].finalMem.contentsEqual(
            parallel[i].finalMem))
            << i;
        expectMetricsSubset(serial[i].metrics, parallel[i].metrics);
        expectMetricsSubset(parallel[i].metrics, serial[i].metrics);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------
// CTA-scheduler edge cases.
// ---------------------------------------------------------------------

Launch
tinyLaunch(unsigned numWarps, unsigned warpsPerCta)
{
    KernelBuilder kb("tiny");
    kb.movSpecial(2, SpecialReg::WARP_ID);
    kb.alu2Imm(Opcode::SHL, 3, 2, 2);
    kb.store(Opcode::ST_SHARED, 3, 0, 2);
    kb.exit();
    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = numWarps;
    launch.warpsPerCta = warpsPerCta;
    return launch;
}

TEST(CtaScheduler, MoreCtasThanSmsRoundRobin)
{
    const Launch launch = tinyLaunch(/*numWarps=*/100,
                                     /*warpsPerCta=*/4);
    SimConfig config = SimConfig::titanXPascal();
    config.numSms = 4;

    GpuCore gpu(config, launch);
    EXPECT_EQ(gpu.numCtas(), 25u);
    gpu.run();

    // Static round-robin: CTA c lands on SM c % 4.
    std::vector<unsigned> perSm(4, 0);
    for (std::size_t c = 0; c < gpu.ctaPlacements().size(); ++c) {
        EXPECT_EQ(gpu.ctaPlacements()[c], c % 4) << "cta " << c;
        ++perSm[gpu.ctaPlacements()[c]];
    }
    EXPECT_EQ(perSm, (std::vector<unsigned>{7, 6, 6, 6}));

    // Every warp ran exactly once: warp w stored w at w << 12.
    const FunctionalResult oracle =
        runFunctional(launch, 1000, /*recordTraces=*/false);
    EXPECT_TRUE(gpu.memory().contentsEqual(oracle.finalMem));
}

TEST(CtaScheduler, LooseRoundRobinRespectsOccupancy)
{
    // CTAs of 8 warps, occupancy cap 10: one CTA per SM at a time,
    // so the third CTA must wait for a drain before placing.
    Launch launch = tinyLaunch(/*numWarps=*/24, /*warpsPerCta=*/8);
    SimConfig config = SimConfig::titanXPascal();
    config.numSms = 2;
    config.ctaPolicy = CtaPolicy::LooseRoundRobin;
    config.maxResidentWarps = 10;

    GpuCore gpu(config, launch);
    EXPECT_EQ(gpu.occupancyCap(), 10u);
    const RunStats stats = gpu.run();

    ASSERT_EQ(gpu.numCtas(), 3u);
    EXPECT_EQ(gpu.ctaPlacements()[0], 0u);
    EXPECT_EQ(gpu.ctaPlacements()[1], 1u);
    EXPECT_LT(gpu.ctaPlacements()[2], 2u);
    EXPECT_LE(stats.peakResident, 10u);

    const FunctionalResult oracle =
        runFunctional(launch, 1000, /*recordTraces=*/false);
    EXPECT_TRUE(gpu.memory().contentsEqual(oracle.finalMem));
}

TEST(CtaScheduler, ZeroWarpLaunchIsFatal)
{
    Launch launch = tinyLaunch(1, 1);
    launch.numWarps = 0;
    SimConfig config = SimConfig::titanXPascal();
    config.numSms = 2;
    EXPECT_THROW(GpuCore(config, launch), FatalError);

    Launch badCta = tinyLaunch(4, 1);
    badCta.warpsPerCta = 0;
    EXPECT_THROW(GpuCore(config, badCta), FatalError);
}

TEST(CtaScheduler, RegisterPressureCapsOccupancy)
{
    // r200 live => 201 GPRs/warp => floor(256 KiB / (201*128 B)) = 10
    // resident warps even though the SM allows 32.
    KernelBuilder kb("fat");
    kb.movImm(200, 1);
    kb.alu2Imm(Opcode::ADD, 200, 200, 1);
    kb.exit();
    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = 32;

    SimConfig config = SimConfig::titanXPascal();
    config.numSms = 2;

    GpuCore gpu(config, launch);
    EXPECT_EQ(gpu.occupancyCap(), 10u);
    const RunStats stats = gpu.run();
    EXPECT_LE(stats.peakResident, 10u);
    for (unsigned s = 0; s < 2; ++s)
        EXPECT_LE(gpu.smStats(s).peakResident, 10u) << "sm " << s;

    // A CTA too big for the cap can never be placed: reject the
    // launch up front instead of deadlocking the placement loop.
    launch.warpsPerCta = 16;
    EXPECT_THROW(GpuCore(config, launch), FatalError);
}

TEST(SmScaling, VectoraddAggregateIpcMonotone)
{
    // Pins the bench/scaling_sms.cc acceptance property at the same
    // scale the smoke gate uses: throughput never drops as SMs are
    // added (CTAs of 4 warps, the bench's grid shape).
    Workload va = workloads::make("VECTORADD", kScale);
    va.launch.warpsPerCta = 4;
    double prev = 0.0;
    for (unsigned sms : {1u, 2u, 4u, 8u, 14u, 28u}) {
        SimConfig config = configFor(Architecture::BOW_WR);
        config.numSms = sms;
        Simulator sim(config);
        const double ipc = sim.run(va.launch).stats.ipc();
        EXPECT_GE(ipc, prev) << sms << " SMs";
        prev = ipc;
    }
}

// ---------------------------------------------------------------------
// Per-SM watchdog scoping.
// ---------------------------------------------------------------------

Kernel
hangKernel()
{
    // Statically well-formed (the exit is reachable in the CFG) but
    // runtime-infinite: p0 is always true.
    KernelBuilder kb("hang");
    kb.movImm(0, 0);
    auto loop = kb.newLabel();
    kb.bind(loop);
    kb.setpImm(CondCode::EQ, predReg(0), 0, 0);
    kb.bra(loop, predReg(0));
    kb.exit();
    return kb.build();
}

TEST(GpuWatchdog, HangNamesTheStalledSmAndSparesTheRest)
{
    Launch launch;
    launch.kernel = hangKernel(); // structural default; unused
    launch.warpKernels.push_back(hangKernel());
    launch.warpKernels.push_back(tinyLaunch(1, 1).kernel);
    launch.numWarps = 2;
    launch.warpsPerCta = 1;

    SimConfig config = SimConfig::titanXPascal();
    config.numSms = 2;
    const Watchdog wd(Watchdog::Limits{/*cycleBudget=*/5000, 0.0});

    GpuCore gpu(config, launch, &wd);
    try {
        gpu.run();
        FAIL() << "expected HangError";
    } catch (const HangError &e) {
        EXPECT_NE(std::string(e.what()).find("sm0"),
                  std::string::npos)
            << e.what();
    }
    // The healthy SM drained long before sm0's budget expired.
    EXPECT_FALSE(gpu.smFinished(0));
    EXPECT_TRUE(gpu.smFinished(1));
}

TEST(GpuWatchdog, FinishedSmStopsConsumingBudget)
{
    const Launch launch = tinyLaunch(4, 1);
    const SimConfig config = SimConfig::titanXPascal();

    SmCore ref(config, launch);
    const Cycle busy = ref.run().cycles;

    // A budget just above the busy-cycle count, then thousands of
    // idle lockstep ticks after the SM drains: the watchdog is keyed
    // to busy cycles, so idling must never trip it.
    const Watchdog wd(Watchdog::Limits{busy + 2, 0.0});
    SmCore sm(config, launch, nullptr, &wd);
    while (!sm.finished())
        sm.step();
    for (unsigned i = 0; i < 10000; ++i)
        EXPECT_NO_THROW(sm.step());
    EXPECT_EQ(sm.finalize().cycles, busy);
}

} // namespace
} // namespace bow
