/**
 * @file
 * Validation of intra-simulation host parallelism (docs/PERFORMANCE.md
 * "Parallel SM stepping"). Four families of guarantees:
 *
 *  - Staged-dispatch equivalence: an SmCore with
 *    SmContext::stagedMemory, stepped externally with a drain after
 *    every step, is bit-identical to the inline dispatch path — the
 *    unit-level core of the whole scheme.
 *
 *  - Thread-count invariance: GpuCore results (stats, registers,
 *    memory, every exported metric) are byte-identical across
 *    hostThreads 1/2/4 at 1/2/4/28 SMs, for fuzzed kernels and for
 *    the nine golden-gate workload/architecture cases.
 *
 *  - hostThreads resolution: explicit config beats BOWSIM_HOST_THREADS
 *    beats hardware autodetect; invalid env values are ignored with a
 *    warning; the knob is excluded from the result-cache key; GpuCore
 *    clamps to numSms; inside a ParallelRunner worker the auto
 *    default is serial.
 *
 *  - ThreadPool self-deadlock guard and error propagation: wait()
 *    from a pool's own worker panics instead of deadlocking, and a
 *    watchdog trip under parallel stepping reports the same "sm<N>:"
 *    error the serial loop would have.
 *
 * Plus epoch stepping (docs/PERFORMANCE.md "Epoch stepping"), the
 * relaxed-synchronization extension of the same scheme: the
 * "EpochStep*" suites pin bit-identical results across epoch lengths
 * and thread counts (fuzz matrix + golden cases), the device-fault
 * epoch clamp, snapshot round-trips at epoch boundaries, watchdog
 * error parity, and the epochCycles resolution/plumbing rules.
 *
 * Every suite name starts with "HostParallel" or "EpochStep" so the
 * CI sanitizer jobs (.github/workflows/ci.yml) can select the lot
 * with one regex each.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "common/json.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/watchdog.h"
#include "compiler/writeback_tagger.h"
#include "core/host_threads.h"
#include "core/result_cache.h"
#include "core/sweep.h"
#include "core/thread_pool.h"
#include "gpu/gpu_core.h"
#include "tests/fuzz_kernels.h"
#include "workloads/registry.h"

namespace bow {
namespace {

constexpr double kScale = 0.05; // pinned like the golden gate

void
expectStatsEqual(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ocCyclesMem, b.ocCyclesMem);
    EXPECT_EQ(a.ocCyclesNonMem, b.ocCyclesNonMem);
    EXPECT_EQ(a.totalCyclesMem, b.totalCyclesMem);
    EXPECT_EQ(a.totalCyclesNonMem, b.totalCyclesNonMem);
    EXPECT_EQ(a.instsMem, b.instsMem);
    EXPECT_EQ(a.instsNonMem, b.instsNonMem);
    EXPECT_EQ(a.rfReads, b.rfReads);
    EXPECT_EQ(a.rfWrites, b.rfWrites);
    EXPECT_EQ(a.bocForwards, b.bocForwards);
    EXPECT_EQ(a.bocDeposits, b.bocDeposits);
    EXPECT_EQ(a.bocResultWrites, b.bocResultWrites);
    EXPECT_EQ(a.rfcReads, b.rfcReads);
    EXPECT_EQ(a.rfcWrites, b.rfcWrites);
    EXPECT_EQ(a.consolidatedWrites, b.consolidatedWrites);
    EXPECT_EQ(a.transientDrops, b.transientDrops);
    EXPECT_EQ(a.safetyWrites, b.safetyWrites);
    EXPECT_EQ(a.destRfOnly, b.destRfOnly);
    EXPECT_EQ(a.destBocOnly, b.destBocOnly);
    EXPECT_EQ(a.destBocAndRf, b.destBocAndRf);
    EXPECT_EQ(a.srcOperandHist, b.srcOperandHist);
    EXPECT_EQ(a.bocOccupancyHist, b.bocOccupancyHist);
    EXPECT_EQ(a.bankReadConflicts, b.bankReadConflicts);
    EXPECT_EQ(a.bankWriteConflicts, b.bankWriteConflicts);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.peakResident, b.peakResident);
}

/** Full metric-registry equality via the stable JSON rendering. */
void
expectMetricsIdentical(const MetricsRegistry &a,
                       const MetricsRegistry &b)
{
    EXPECT_EQ(a.toJson().dump(), b.toJson().dump());
}

/** Apply the compiler preprocessing Simulator would (BOW-WR-OPT). */
Launch
preprocess(Launch launch, const SimConfig &config)
{
    if (config.arch == Architecture::BOW_WR_OPT) {
        if (launch.warpKernels.empty()) {
            tagWritebacks(launch.kernel, config.windowSize);
        } else {
            for (Kernel &k : launch.warpKernels)
                tagWritebacks(k, config.windowSize);
        }
    }
    return launch;
}

/** One GpuCore run at a given host thread count. */
struct GpuRun
{
    RunStats stats;
    std::vector<RegFileState> finalRegs;
    MemoryStore finalMem;
    MetricsRegistry metrics;
};

GpuRun
runGpu(SimConfig config, const Launch &launch, unsigned hostThreads)
{
    config.hostThreads = hostThreads;
    GpuCore gpu(config, launch);
    GpuRun out;
    out.stats = gpu.run();
    out.finalRegs = gpu.finalRegs();
    out.finalMem = gpu.memory();
    gpu.exportMetrics(out.metrics);
    EXPECT_EQ(gpu.hostThreads(),
              std::min(hostThreads, config.numSms));
    return out;
}

void
expectRunsIdentical(const GpuRun &ref, const GpuRun &got,
                    const std::string &label)
{
    SCOPED_TRACE(label);
    expectStatsEqual(ref.stats, got.stats);
    ASSERT_EQ(ref.finalRegs.size(), got.finalRegs.size());
    for (std::size_t w = 0; w < ref.finalRegs.size(); ++w)
        EXPECT_EQ(ref.finalRegs[w], got.finalRegs[w]) << "warp " << w;
    EXPECT_TRUE(ref.finalMem.contentsEqual(got.finalMem));
    expectMetricsIdentical(ref.metrics, got.metrics);
}

// ---------------------------------------------------------------------
// Staged-dispatch equivalence at the SmCore level.
// ---------------------------------------------------------------------

class HostParallelStagedSm
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HostParallelStagedSm, StepAndDrainMatchesInlineDispatch)
{
    const Launch launch = fuzzKernelLaunch(GetParam());
    for (Architecture arch :
         {Architecture::Baseline, Architecture::BOW_WR}) {
        SCOPED_TRACE(static_cast<int>(arch));
        const SimConfig config = configFor(arch);

        SmCore ref(config, launch);
        const RunStats refStats = ref.run();

        SmContext ctx;
        ctx.stagedMemory = true;
        SmCore sm(config, launch, ctx);
        while (!sm.finished()) {
            sm.step();
            sm.drainStagedMem();
        }
        const RunStats stats = sm.finalize();

        expectStatsEqual(refStats, stats);
        ASSERT_EQ(ref.finalRegs().size(), sm.finalRegs().size());
        for (std::size_t w = 0; w < ref.finalRegs().size(); ++w)
            EXPECT_EQ(ref.finalRegs()[w], sm.finalRegs()[w])
                << "warp " << w;
        EXPECT_TRUE(ref.memory().contentsEqual(sm.memory()));
    }
}

TEST(HostParallelStagedSm, RejectsInjectorAndTracer)
{
    // Staged dispatch defers the functional evaluation past the
    // injector/tracer observation points, so wiring them together
    // must fail loudly rather than silently record garbage.
    const Launch launch = fuzzKernelLaunch(1);
    const SimConfig config = configFor(Architecture::BOW_WR);
    SmContext ctx;
    ctx.stagedMemory = true;
    FaultInjector injector(FaultPlan{}, FaultProtection::None);
    EXPECT_THROW(SmCore(config, launch, ctx, &injector), PanicError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostParallelStagedSm,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Thread-count invariance: fuzz matrix and golden cases.
// ---------------------------------------------------------------------

class HostParallelFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HostParallelFuzz, ResultsInvariantToHostThreadCount)
{
    Launch launch = fuzzKernelLaunch(GetParam());
    launch.warpsPerCta = 1 + static_cast<unsigned>(GetParam() % 4);

    for (unsigned numSms : {1u, 2u, 4u, 28u}) {
        SimConfig config = configFor(Architecture::BOW_WR);
        config.numSms = numSms;
        const GpuRun ref = runGpu(config, launch, 1);
        for (unsigned hostThreads : {2u, 4u}) {
            const GpuRun got = runGpu(config, launch, hostThreads);
            expectRunsIdentical(
                ref, got,
                strf("seed=", GetParam(), " numSms=", numSms,
                     " hostThreads=", hostThreads));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostParallelFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

/** The nine golden-gate cases (bench/metrics_regress.cc). */
struct ParityCase
{
    const char *workload;
    Architecture arch;
};

const ParityCase kParityCases[] = {
    {"VECTORADD", Architecture::Baseline},
    {"VECTORADD", Architecture::BOW_WR},
    {"VECTORADD", Architecture::BOW_WR_OPT},
    {"BFS", Architecture::Baseline},
    {"BFS", Architecture::BOW_WR},
    {"BFS", Architecture::RFC},
    {"BTREE", Architecture::Baseline},
    {"BTREE", Architecture::BOW_WR},
    {"BTREE", Architecture::BOW_WR_OPT},
};

class HostParallelGolden
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(HostParallelGolden, FourSmsBitIdenticalAcrossHostThreads)
{
    const ParityCase &c = kParityCases[GetParam()];
    const Workload wl = workloads::make(c.workload, kScale);
    SimConfig config = configFor(c.arch);
    config.numSms = 4;
    const Launch launch = preprocess(wl.launch, config);

    const GpuRun serial = runGpu(config, launch, 1);
    const GpuRun parallel = runGpu(config, launch, 4);
    expectRunsIdentical(serial, parallel,
                        strf(c.workload, "/", archName(c.arch)));
}

INSTANTIATE_TEST_SUITE_P(GoldenCases, HostParallelGolden,
                         ::testing::Range<std::size_t>(
                             0, std::size(kParityCases)));

// ---------------------------------------------------------------------
// hostThreads resolution and plumbing.
// ---------------------------------------------------------------------

/** Scoped save/clear/restore of one environment variable
 *  (default BOWSIM_HOST_THREADS). */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *var = kVar) : var_(var)
    {
        if (const char *v = std::getenv(var_)) {
            saved_ = v;
            had_ = true;
        }
        unsetenv(var_);
    }
    ~EnvGuard()
    {
        if (had_)
            setenv(var_, saved_.c_str(), 1);
        else
            unsetenv(var_);
    }
    void
    set(const char *v) const
    {
        setenv(var_, v, 1);
    }

    static constexpr const char *kVar = "BOWSIM_HOST_THREADS";

  private:
    const char *var_;
    std::string saved_;
    bool had_ = false;
};

TEST(HostParallelConfig, ExplicitSettingBeatsEnvironment)
{
    EnvGuard env;
    env.set("3");
    EXPECT_EQ(resolveHostThreads(2), 2u);
    EXPECT_EQ(resolveHostThreads(1), 1u);
}

TEST(HostParallelConfig, EnvironmentOverridesAuto)
{
    EnvGuard env;
    env.set("3");
    EXPECT_EQ(resolveHostThreads(0), 3u);
}

TEST(HostParallelConfig, InvalidEnvironmentValuesAreIgnored)
{
    EnvGuard env;
    const unsigned base = resolveHostThreads(0);
    EXPECT_GE(base, 1u);
    for (const char *bad : {"0", "-2", "abc", "", "4x", " 4"}) {
        env.set(bad);
        EXPECT_EQ(resolveHostThreads(0), base) << "'" << bad << "'";
    }
}

TEST(HostParallelConfig, AutoInsidePoolWorkerIsSerial)
{
    // A GpuCore created inside a ParallelRunner job must not multiply
    // the host thread count: --jobs already owns the hardware.
    EnvGuard env;
    std::atomic<unsigned> resolved{0};
    ThreadPool pool(2);
    pool.post([&] { resolved = resolveHostThreads(0); });
    pool.wait();
    EXPECT_EQ(resolved.load(), 1u);
    // ...but an explicit request is honored even there.
    pool.post([&] { resolved = resolveHostThreads(4); });
    pool.wait();
    EXPECT_EQ(resolved.load(), 4u);
}

TEST(HostParallelConfig, GpuCoreClampsToNumSms)
{
    const Launch launch = fuzzKernelLaunch(1);
    SimConfig config = configFor(Architecture::BOW_WR);
    config.numSms = 2;
    config.hostThreads = 16;
    EXPECT_EQ(GpuCore(config, launch).hostThreads(), 2u);
    config.hostThreads = 1;
    EXPECT_EQ(GpuCore(config, launch).hostThreads(), 1u);
}

TEST(HostParallelConfig, HostThreadsExcludedFromResultCacheKey)
{
    // A host-speed knob with bit-identical results must share one
    // cache entry across all settings (like hostFastForward).
    Workload wl = workloads::make("VECTORADD", kScale);
    SimConfig a = configFor(Architecture::BOW_WR);
    SimConfig b = a;
    a.hostThreads = 1;
    b.hostThreads = 8;
    EXPECT_EQ(simCacheKey(wl, a), simCacheKey(wl, b));
    b.numSms = 4;
    EXPECT_NE(simCacheKey(wl, a), simCacheKey(wl, b));
}

// ---------------------------------------------------------------------
// ThreadPool self-deadlock guard.
// ---------------------------------------------------------------------

TEST(HostParallelPoolGuard, WaitFromOwnWorkerPanics)
{
    // The task's wait() would occupy the very thread that must drain
    // the queue it waits on; the guard turns the deadlock into a
    // PanicError that the outer (legal) wait() rethrows.
    ThreadPool pool(2);
    pool.post([&] { pool.wait(); });
    EXPECT_THROW(pool.wait(), PanicError);
    // The pool stays usable after the rethrow.
    std::atomic<bool> ran{false};
    pool.post([&] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(HostParallelPoolGuard, NestedDistinctPoolIsAllowed)
{
    ThreadPool outer(1);
    std::atomic<bool> innerRan{false};
    outer.post([&] {
        ThreadPool inner(1);
        inner.post([&] { innerRan = true; });
        inner.wait();
    });
    EXPECT_NO_THROW(outer.wait());
    EXPECT_TRUE(innerRan.load());
}

TEST(HostParallelPoolGuard, InsideWorkerFlag)
{
    EXPECT_FALSE(ThreadPool::insideWorker());
    std::atomic<bool> inside{false};
    ThreadPool pool(1);
    pool.post([&] { inside = ThreadPool::insideWorker(); });
    pool.wait();
    EXPECT_TRUE(inside.load());
    EXPECT_FALSE(ThreadPool::insideWorker());
}

// ---------------------------------------------------------------------
// Error propagation through the parallel cycle loop.
// ---------------------------------------------------------------------

Kernel
hangKernel()
{
    KernelBuilder kb("hang");
    kb.movImm(0, 0);
    auto loop = kb.newLabel();
    kb.bind(loop);
    kb.setpImm(CondCode::EQ, predReg(0), 0, 0);
    kb.bra(loop, predReg(0));
    kb.exit();
    return kb.build();
}

TEST(HostParallelWatchdog, HangReportsSameSmAsSerialStepping)
{
    // Both SMs hang, so the budget trips on a genuinely parallel
    // cycle; the coordinator must surface the lowest SM index —
    // exactly the SM the serial loop would have thrown from.
    Launch launch;
    launch.kernel = hangKernel();
    launch.warpKernels.push_back(hangKernel());
    launch.warpKernels.push_back(hangKernel());
    launch.numWarps = 2;
    launch.warpsPerCta = 1;

    SimConfig config = SimConfig::titanXPascal();
    config.numSms = 2;
    const Watchdog wd(Watchdog::Limits{/*cycleBudget=*/2000, 0.0});

    auto runAndCatch = [&](unsigned hostThreads) {
        config.hostThreads = hostThreads;
        GpuCore gpu(config, launch, &wd);
        try {
            gpu.run();
        } catch (const HangError &e) {
            return std::string(e.what());
        }
        ADD_FAILURE() << "expected HangError at hostThreads="
                      << hostThreads;
        return std::string();
    };

    const std::string serial = runAndCatch(1);
    const std::string parallel = runAndCatch(2);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(parallel.find("sm0"), std::string::npos) << parallel;
}

// ---------------------------------------------------------------------
// Epoch stepping (docs/PERFORMANCE.md "Epoch stepping"): results must
// be bit-identical to per-cycle lockstep at any epoch length and any
// host thread count, including every exported metric (L2 bank queues,
// MSHR stalls, fast-forward credit). Suite names all start with
// "EpochStep" for the CI sanitizer regexes.
// ---------------------------------------------------------------------

GpuRun
runGpuEpoch(SimConfig config, const Launch &launch,
            unsigned hostThreads, unsigned epochCycles)
{
    config.hostThreads = hostThreads;
    config.epochCycles = epochCycles;
    GpuCore gpu(config, launch);
    GpuRun out;
    out.stats = gpu.run();
    out.finalRegs = gpu.finalRegs();
    out.finalMem = gpu.memory();
    gpu.exportMetrics(out.metrics);
    return out;
}

class EpochStepFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EpochStepFuzz, ResultsInvariantToEpochLengthAndThreads)
{
    Launch launch = fuzzKernelLaunch(GetParam());
    launch.warpsPerCta = 1 + static_cast<unsigned>(GetParam() % 4);

    for (unsigned numSms : {1u, 4u, 28u}) {
        SimConfig config = configFor(Architecture::BOW_WR);
        config.numSms = numSms;
        const GpuRun ref = runGpuEpoch(config, launch, 1, 1);
        for (unsigned epochCycles : {1u, 7u, 64u, 1024u}) {
            for (unsigned hostThreads : {1u, 2u, 4u}) {
                if (epochCycles == 1 && hostThreads == 1)
                    continue;   // that is the reference itself
                if (numSms == 1 &&
                    !(epochCycles == 64 && hostThreads == 4)) {
                    // Single SM clamps every combination to the
                    // legacy serial path; one probe is enough.
                    continue;
                }
                const GpuRun got = runGpuEpoch(
                    config, launch, hostThreads, epochCycles);
                expectRunsIdentical(
                    ref, got,
                    strf("seed=", GetParam(), " numSms=", numSms,
                         " epochCycles=", epochCycles,
                         " hostThreads=", hostThreads));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochStepFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

class EpochStepGolden : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(EpochStepGolden, LargeEpochBitIdenticalToPerCycle)
{
    const ParityCase &c = kParityCases[GetParam()];
    const Workload wl = workloads::make(c.workload, kScale);
    SimConfig config = configFor(c.arch);
    config.numSms = 4;
    const Launch launch = preprocess(wl.launch, config);

    const GpuRun serial = runGpuEpoch(config, launch, 1, 1);
    const GpuRun epochSerial = runGpuEpoch(config, launch, 1, 1024);
    const GpuRun epochParallel = runGpuEpoch(config, launch, 4, 1024);
    expectRunsIdentical(serial, epochSerial,
                        strf(c.workload, "/", archName(c.arch),
                             " epoch=1024 hostThreads=1"));
    expectRunsIdentical(serial, epochParallel,
                        strf(c.workload, "/", archName(c.arch),
                             " epoch=1024 hostThreads=4"));
}

INSTANTIATE_TEST_SUITE_P(GoldenCases, EpochStepGolden,
                         ::testing::Range<std::size_t>(
                             0, std::size(kParityCases)));

// ---------------------------------------------------------------------
// Device-fault clamp: the epoch boundary must land exactly on the
// planned fire cycle, so the pre-cycle probe observes the same state
// per-cycle stepping would and the whole faulty run stays identical.
// ---------------------------------------------------------------------

TEST(EpochStepDeviceFault, FireCycleClampsEpochBoundary)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    SimConfig config = configFor(Architecture::BOW_WR);
    config.numSms = 2;
    const Launch launch = preprocess(wl.launch, config);

    FaultPlan plan;
    plan.enabled = true;
    plan.site = FaultSite::L2Line;
    plan.addr = 0x80;
    plan.bit = 3;
    plan.cycle = 500;

    auto runFaulty = [&](unsigned epochCycles) {
        SimConfig faulty = config;
        faulty.epochCycles = epochCycles;
        FaultInjector injector(plan, FaultProtection::None);
        GpuCore gpu(faulty, launch, nullptr, &injector);
        GpuRun out;
        out.stats = gpu.run();
        out.finalRegs = gpu.finalRegs();
        out.finalMem = gpu.memory();
        gpu.exportMetrics(out.metrics);
        const FaultReport *report = gpu.deviceFaultReport();
        EXPECT_NE(report, nullptr);
        EXPECT_TRUE(report->fired);
        return out;
    };

    const GpuRun perCycle = runFaulty(1);
    for (unsigned epochCycles : {7u, 64u, 1024u}) {
        const GpuRun epoch = runFaulty(epochCycles);
        expectRunsIdentical(perCycle, epoch,
                            strf("epochCycles=", epochCycles));
    }
}

// ---------------------------------------------------------------------
// Snapshots: epoch boundaries are clean global states (every staged
// queue drained), so save/load round-trips exactly like per-cycle
// stepping.
// ---------------------------------------------------------------------

TEST(EpochStepSnapshot, SaveLoadAtEpochBoundaryRoundTrips)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    SimConfig config = configFor(Architecture::BOW_WR);
    config.numSms = 4;
    config.epochCycles = 64;
    config.hostThreads = 2;
    const Launch launch = preprocess(wl.launch, config);

    const GpuRun straight = runGpuEpoch(config, launch, 2, 64);

    GpuCore first(config, launch);
    for (int i = 0; i < 5 && first.stepCycle(); ++i) {
    }
    const JsonValue snap = first.saveState();

    GpuCore resumed(config, launch);
    resumed.loadState(snap);
    GpuRun out;
    out.stats = resumed.run();
    out.finalRegs = resumed.finalRegs();
    out.finalMem = resumed.memory();
    resumed.exportMetrics(out.metrics);
    expectRunsIdentical(straight, out, "resumed-at-epoch-boundary");
}

// ---------------------------------------------------------------------
// Watchdog budget trips surface the same error as per-cycle stepping.
// ---------------------------------------------------------------------

TEST(EpochStepWatchdog, HangReportsSameSmAsPerCycle)
{
    Launch launch;
    launch.kernel = hangKernel();
    launch.warpKernels.push_back(hangKernel());
    launch.warpKernels.push_back(hangKernel());
    launch.numWarps = 2;
    launch.warpsPerCta = 1;

    SimConfig config = SimConfig::titanXPascal();
    config.numSms = 2;
    const Watchdog wd(Watchdog::Limits{/*cycleBudget=*/2000, 0.0});

    auto runAndCatch = [&](unsigned hostThreads,
                           unsigned epochCycles) {
        config.hostThreads = hostThreads;
        config.epochCycles = epochCycles;
        GpuCore gpu(config, launch, &wd);
        try {
            gpu.run();
        } catch (const HangError &e) {
            return std::string(e.what());
        }
        ADD_FAILURE() << "expected HangError at hostThreads="
                      << hostThreads << " epochCycles=" << epochCycles;
        return std::string();
    };

    const std::string perCycle = runAndCatch(1, 1);
    EXPECT_EQ(perCycle, runAndCatch(1, 64));
    EXPECT_EQ(perCycle, runAndCatch(2, 64));
    EXPECT_NE(perCycle.find("sm0"), std::string::npos) << perCycle;
}

// ---------------------------------------------------------------------
// epochCycles resolution and plumbing.
// ---------------------------------------------------------------------

TEST(EpochStepConfig, ExplicitSettingBeatsEnvironment)
{
    EnvGuard env("BOWSIM_EPOCH_CYCLES");
    env.set("512");
    EXPECT_EQ(resolveEpochCycles(64), 64u);
    EXPECT_EQ(resolveEpochCycles(1), 1u);
}

TEST(EpochStepConfig, EnvironmentOverridesAuto)
{
    EnvGuard env("BOWSIM_EPOCH_CYCLES");
    env.set("512");
    EXPECT_EQ(resolveEpochCycles(0), 512u);
}

TEST(EpochStepConfig, InvalidEnvironmentValuesAreIgnored)
{
    EnvGuard env("BOWSIM_EPOCH_CYCLES");
    EXPECT_EQ(resolveEpochCycles(0), 1u);
    for (const char *bad : {"0", "-2", "abc", "", "4x", " 4"}) {
        env.set(bad);
        EXPECT_EQ(resolveEpochCycles(0), 1u) << "'" << bad << "'";
    }
}

TEST(EpochStepConfig, ExcludedFromResultCacheKey)
{
    // Like hostThreads: a host-speed knob with bit-identical results
    // must share one cache entry across all settings.
    Workload wl = workloads::make("VECTORADD", kScale);
    SimConfig a = configFor(Architecture::BOW_WR);
    SimConfig b = a;
    a.epochCycles = 1;
    b.epochCycles = 1024;
    EXPECT_EQ(simCacheKey(wl, a), simCacheKey(wl, b));
    b.numSms = 4;
    EXPECT_NE(simCacheKey(wl, a), simCacheKey(wl, b));
}

TEST(EpochStepConfig, SingleSmClampsToPerCycle)
{
    const Launch launch = fuzzKernelLaunch(1);
    SimConfig config = configFor(Architecture::BOW_WR);
    config.numSms = 1;
    config.epochCycles = 512;
    EXPECT_EQ(GpuCore(config, launch).epochCycles(), 1u);
    config.numSms = 2;
    EXPECT_EQ(GpuCore(config, launch).epochCycles(), 512u);
}

TEST(EpochStepConfig, PerSmInjectorForcesPerCycle)
{
    // A per-SM fault injector observes mid-cycle state that staged
    // dispatch reorders; a device-site plan only needs the epoch
    // boundary clamped to its fire cycle.
    const Launch launch = fuzzKernelLaunch(1);
    SimConfig config = configFor(Architecture::BOW_WR);
    config.numSms = 2;
    config.epochCycles = 512;

    FaultPlan perSm;
    perSm.enabled = true;
    perSm.site = FaultSite::RfBank;
    perSm.cycle = 10;
    FaultInjector smInjector(perSm, FaultProtection::None);
    EXPECT_EQ(GpuCore(config, launch, nullptr, &smInjector)
                  .epochCycles(),
              1u);

    FaultPlan device;
    device.enabled = true;
    device.site = FaultSite::L2Line;
    device.cycle = 10;
    FaultInjector devInjector(device, FaultProtection::None);
    EXPECT_EQ(GpuCore(config, launch, nullptr, &devInjector)
                  .epochCycles(),
              512u);
}

} // namespace
} // namespace bow
