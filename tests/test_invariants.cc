/**
 * @file
 * Cross-cutting property tests (parameterized sweeps):
 *
 *  1. Bypassing never changes architectural results — every
 *     architecture x workload x window combination must match the
 *     functional golden model.
 *  2. Read-bypass opportunity is monotone in the window size.
 *  3. RF traffic ordering: BOW-WR-opt <= BOW-WR <= BOW writes.
 *  4. Access-count / energy accounting identities.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "compiler/reuse.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

// A representative workload subset keeps the heavier sweeps fast
// while covering branchy (BTREE), mad-heavy (CIFARNET), memory-bound
// (VECTORADD) and reuse-heavy (SAD) behaviour; the correctness sweep
// additionally runs the full Table III suite.
const char *const kWorkloads[] = {"BTREE", "CIFARNET", "VECTORADD",
                                  "SAD"};
const char *const kAllWorkloads[] = {
    "LIB", "LPS", "STO", "WP", "BACKPROP", "BFS", "BTREE", "GAUSSIAN",
    "MUM", "NW", "SRAD", "CIFARNET", "SQUEEZENET", "VECTORADD", "SAD"};
constexpr double kScale = 0.08;

using ArchWindow = std::tuple<Architecture, unsigned>;
using SweepParam = std::tuple<const char *, ArchWindow>;

std::string
sweepLabel(const ::testing::TestParamInfo<SweepParam> &info)
{
    const char *name = std::get<0>(info.param);
    const Architecture arch = std::get<0>(std::get<1>(info.param));
    const unsigned iw = std::get<1>(std::get<1>(info.param));
    std::string label = std::string(name) + "_" + archName(arch) +
        "_iw" + std::to_string(iw);
    for (auto &c : label) {
        if (c == '-')
            c = '_';
    }
    return label;
}

class CorrectnessSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(CorrectnessSweep, TimingMatchesFunctional)
{
    const char *name = std::get<0>(GetParam());
    const Architecture arch = std::get<0>(std::get<1>(GetParam()));
    const unsigned iw = std::get<1>(std::get<1>(GetParam()));
    const auto wl = workloads::make(name, kScale);
    Simulator sim(configFor(arch, iw));
    sim.verifyAgainstFunctional(wl.launch);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchesAndWindows, CorrectnessSweep,
    ::testing::Combine(
        ::testing::ValuesIn(kAllWorkloads),
        ::testing::Values(
            ArchWindow{Architecture::Baseline, 3},
            ArchWindow{Architecture::RFC, 3},
            ArchWindow{Architecture::BOW, 2},
            ArchWindow{Architecture::BOW, 3},
            ArchWindow{Architecture::BOW, 4},
            ArchWindow{Architecture::BOW_WR, 2},
            ArchWindow{Architecture::BOW_WR, 3},
            ArchWindow{Architecture::BOW_WR, 4},
            ArchWindow{Architecture::BOW_WR_OPT, 2},
            ArchWindow{Architecture::BOW_WR_OPT, 3},
            ArchWindow{Architecture::BOW_WR_OPT, 4})),
    sweepLabel);

class HalfSizeSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(HalfSizeSweep, HalfSizeBocStaysCorrect)
{
    const auto wl = workloads::make(GetParam(), kScale);
    Simulator sim(configFor(Architecture::BOW_WR_OPT, 3,
                            /*bocEntries=*/6));
    sim.verifyAgainstFunctional(wl.launch);
}

INSTANTIATE_TEST_SUITE_P(HalfSize, HalfSizeSweep,
                         ::testing::ValuesIn(kWorkloads));

class ExtendedWindowSweep
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ExtendedWindowSweep, CapacityLimitedResidencyStaysCorrect)
{
    const auto wl = workloads::make(GetParam(), kScale);
    for (unsigned cap : {6u, 12u}) {
        SimConfig config = configFor(Architecture::BOW_WR, 3, cap);
        config.extendedWindow = true;
        Simulator sim(config);
        sim.verifyAgainstFunctional(wl.launch);
    }
}

TEST_P(ExtendedWindowSweep, ExtendedWindowForwardsAtLeastAsMuch)
{
    const auto wl = workloads::make(GetParam(), kScale);
    SimConfig nominal = configFor(Architecture::BOW_WR, 3, 12);
    SimConfig extended = nominal;
    extended.extendedWindow = true;
    const auto rn = Simulator(nominal).run(wl.launch);
    const auto re = Simulator(extended).run(wl.launch);
    EXPECT_GE(re.stats.bocForwards, rn.stats.bocForwards)
        << GetParam();
    EXPECT_LE(re.stats.rfReads, rn.stats.rfReads) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Workloads, ExtendedWindowSweep,
                         ::testing::ValuesIn(kWorkloads));

class MonotoneSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MonotoneSweep, ReadBypassMonotoneInWindow)
{
    const auto wl = workloads::make(GetParam(), kScale);
    const auto fn = runFunctional(wl.launch);
    double prev = -1.0;
    for (unsigned iw = 2; iw <= 7; ++iw) {
        const auto s = analyzeReuse(wl.launch.kernel, fn.traces, iw);
        EXPECT_GE(s.readFraction() + 1e-12, prev)
            << GetParam() << " iw=" << iw;
        prev = s.readFraction();
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, MonotoneSweep,
                         ::testing::ValuesIn(kWorkloads));

class TrafficSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TrafficSweep, WritePolicyOrdering)
{
    const auto wl = workloads::make(GetParam(), kScale);
    const auto bow =
        Simulator(configFor(Architecture::BOW, 3)).run(wl.launch);
    const auto wr =
        Simulator(configFor(Architecture::BOW_WR, 3)).run(wl.launch);
    const auto opt = Simulator(configFor(Architecture::BOW_WR_OPT, 3))
                         .run(wl.launch);

    // Write-back can only shield the RF relative to write-through,
    // and hints can only help further.
    EXPECT_LE(wr.stats.rfWrites, bow.stats.rfWrites) << GetParam();
    EXPECT_LE(opt.stats.rfWrites, wr.stats.rfWrites) << GetParam();
    // All variants execute the same dynamic instructions.
    EXPECT_EQ(bow.stats.instructions, wr.stats.instructions);
    EXPECT_EQ(wr.stats.instructions, opt.stats.instructions);
}

INSTANTIATE_TEST_SUITE_P(Workloads, TrafficSweep,
                         ::testing::ValuesIn(kWorkloads));

TEST_P(TrafficSweep, EnergyOrdering)
{
    const auto wl = workloads::make(GetParam(), kScale);
    const auto base =
        Simulator(configFor(Architecture::Baseline)).run(wl.launch);
    const auto bow =
        Simulator(configFor(Architecture::BOW, 3)).run(wl.launch);
    const auto opt = Simulator(configFor(Architecture::BOW_WR_OPT, 3))
                         .run(wl.launch);
    const double nBow = bow.energy.normalizedTo(base.energy);
    const double nOpt = opt.energy.normalizedTo(base.energy);
    EXPECT_LT(nBow, 1.0) << GetParam();
    EXPECT_LT(nOpt, nBow) << GetParam();
}

TEST_P(TrafficSweep, AccessAccountingIdentity)
{
    // Every dynamic unique-source register read is served by an RF
    // bank read, a BOC forward, or by sharing an in-flight fetch —
    // so forwards and bank reads are each bounded by the dynamic
    // read count, and in BOW mode every bank read deposits into a
    // BOC.
    const auto wl = workloads::make(GetParam(), kScale);
    const auto fn = runFunctional(wl.launch);
    std::uint64_t totalReads = 0;
    for (const auto &t : fn.traces) {
        for (const auto &d : t.insts)
            totalReads +=
                wl.launch.kernel.inst(d.idx).uniqueSrcRegs().size();
    }
    const auto bow =
        Simulator(configFor(Architecture::BOW, 3)).run(wl.launch);
    EXPECT_LE(bow.stats.bocForwards, totalReads) << GetParam();
    EXPECT_LE(bow.stats.rfReads, totalReads) << GetParam();
    EXPECT_GT(bow.stats.bocForwards, 0u) << GetParam();
    EXPECT_EQ(bow.stats.bocDeposits, bow.stats.rfReads);
}

} // namespace
} // namespace bow
