/**
 * @file
 * Unit tests for the ISA layer: opcode traits, instruction operand
 * accessors, kernel validation and basic-block leader detection.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/kernel.h"
#include "workloads/builder.h"

namespace bow {
namespace {

TEST(Opcode, TraitsAreConsistent)
{
    EXPECT_EQ(opcodeName(Opcode::MAD), "mad");
    EXPECT_EQ(opcodeInfo(Opcode::MAD).numSrcs, 3u);
    EXPECT_TRUE(opcodeInfo(Opcode::MAD).hasDest);
    EXPECT_EQ(opcodeInfo(Opcode::MAD).unit, ExecUnit::ALU);

    EXPECT_TRUE(opcodeInfo(Opcode::LD_GLOBAL).isLoad);
    EXPECT_FALSE(opcodeInfo(Opcode::LD_GLOBAL).isStore);
    EXPECT_TRUE(opcodeInfo(Opcode::ST_SHARED).isStore);
    EXPECT_EQ(opcodeInfo(Opcode::ST_GLOBAL).numSrcs, 2u);
    EXPECT_FALSE(opcodeInfo(Opcode::ST_GLOBAL).hasDest);

    EXPECT_TRUE(opcodeInfo(Opcode::BRA).isBranch);
    EXPECT_TRUE(opcodeInfo(Opcode::EXIT).endsWarp);
    EXPECT_TRUE(opcodeInfo(Opcode::RET).endsWarp);
    EXPECT_EQ(opcodeInfo(Opcode::SQRT).unit, ExecUnit::SFU);
}

TEST(Opcode, EveryOpcodeHasAName)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(Opcode::NUM_OPCODES); ++i) {
        EXPECT_FALSE(opcodeName(static_cast<Opcode>(i)).empty());
    }
}

TEST(Opcode, IsMemoryOp)
{
    EXPECT_TRUE(isMemoryOp(Opcode::LD_SHARED));
    EXPECT_TRUE(isMemoryOp(Opcode::ST_GLOBAL));
    EXPECT_FALSE(isMemoryOp(Opcode::ADD));
    EXPECT_FALSE(isMemoryOp(Opcode::BRA));
}

TEST(Opcode, CondEval)
{
    EXPECT_TRUE(evalCond(CondCode::EQ, 5, 5));
    EXPECT_TRUE(evalCond(CondCode::NE, 5, 6));
    // Signed comparison: 0xFFFFFFFF is -1.
    EXPECT_TRUE(evalCond(CondCode::LT, 0xFFFFFFFFu, 0));
    EXPECT_FALSE(evalCond(CondCode::GT, 0xFFFFFFFFu, 0));
    EXPECT_TRUE(evalCond(CondCode::LE, 3, 3));
    EXPECT_TRUE(evalCond(CondCode::GE, 4, 3));
}

TEST(Instruction, SrcRegsIncludesGuardPredicate)
{
    Instruction i;
    i.op = Opcode::ADD;
    i.dst = 1;
    i.addSrc(Operand::makeReg(2));
    i.addSrc(Operand::makeReg(3));
    i.pred = predReg(0);
    const auto regs = i.srcRegs();
    ASSERT_EQ(regs.size(), 3u);
    EXPECT_EQ(regs[0], 2);
    EXPECT_EQ(regs[1], 3);
    EXPECT_EQ(regs[2], predReg(0));
}

TEST(Instruction, UniqueSrcRegsDeduplicates)
{
    Instruction i;
    i.op = Opcode::MAD;
    i.dst = 1;
    i.addSrc(Operand::makeReg(5));
    i.addSrc(Operand::makeReg(5));
    i.addSrc(Operand::makeReg(7));
    EXPECT_EQ(i.srcRegs().size(), 3u);
    EXPECT_EQ(i.uniqueSrcRegs().size(), 2u);
}

TEST(Instruction, NumRegSrcsSkipsImmediates)
{
    Instruction i;
    i.op = Opcode::ADD;
    i.dst = 1;
    i.addSrc(Operand::makeReg(2));
    i.addSrc(Operand::makeImm(7));
    EXPECT_EQ(i.numRegSrcs(), 1u);
}

TEST(Instruction, AddSrcOverflowPanics)
{
    Instruction i;
    i.op = Opcode::MAD;
    i.addSrc(Operand::makeReg(1));
    i.addSrc(Operand::makeReg(2));
    i.addSrc(Operand::makeReg(3));
    EXPECT_THROW(i.addSrc(Operand::makeReg(4)), PanicError);
}

TEST(Kernel, FinalizeRejectsEmptyKernel)
{
    Kernel k("empty");
    EXPECT_THROW(k.finalize(), FatalError);
}

TEST(Kernel, FinalizeRejectsMissingTerminator)
{
    Kernel k("noexit");
    Instruction i;
    i.op = Opcode::NOP;
    k.add(i);
    EXPECT_THROW(k.finalize(), FatalError);
}

TEST(Kernel, FinalizeRejectsWrongSourceCount)
{
    Kernel k("badsrc");
    Instruction i;
    i.op = Opcode::ADD;
    i.dst = 1;
    i.addSrc(Operand::makeReg(2)); // add needs two sources
    k.add(i);
    Instruction e;
    e.op = Opcode::EXIT;
    k.add(e);
    EXPECT_THROW(k.finalize(), FatalError);
}

TEST(Kernel, FinalizeRejectsUnresolvedBranch)
{
    Kernel k("badbr");
    Instruction b;
    b.op = Opcode::BRA;
    k.add(b);
    Instruction e;
    e.op = Opcode::EXIT;
    k.add(e);
    EXPECT_THROW(k.finalize(), FatalError);
}

TEST(Kernel, NumGprsExcludesPredicates)
{
    KernelBuilder kb("gprs");
    kb.movImm(9, 1);
    kb.setpImm(CondCode::NE, predReg(3), 9, 0);
    kb.exit();
    Kernel k = kb.build();
    EXPECT_EQ(k.numGprs(), 10u);
}

TEST(Kernel, LeadersAtBranchTargetsAndFallThroughs)
{
    KernelBuilder kb("leaders");
    auto target = kb.newLabel();
    kb.movImm(0, 1);            // 0: leader (entry)
    kb.bra(target);             // 1
    kb.movImm(1, 2);            // 2: leader (after branch)
    kb.bind(target);
    kb.movImm(2, 3);            // 3: leader (branch target)
    kb.exit();                  // 4
    Kernel k = kb.build();
    EXPECT_TRUE(k.isLeader(0));
    EXPECT_FALSE(k.isLeader(1));
    EXPECT_TRUE(k.isLeader(2));
    EXPECT_TRUE(k.isLeader(3));
    EXPECT_FALSE(k.isLeader(4));
    EXPECT_EQ(k.leaders().size(), 3u);
}

TEST(KernelBuilder, UnboundLabelPanics)
{
    KernelBuilder kb("unbound");
    auto l = kb.newLabel();
    kb.bra(l);
    kb.exit();
    EXPECT_THROW(kb.build(), PanicError);
}

TEST(KernelBuilder, DoubleBindPanics)
{
    KernelBuilder kb("dbl");
    auto l = kb.newLabel();
    kb.bind(l);
    kb.movImm(0, 1);
    EXPECT_THROW(kb.bind(l), PanicError);
}

} // namespace
} // namespace bow
