/**
 * @file
 * Memory model tests: functional store semantics and the L1/L2
 * timing hierarchy.
 */

#include <gtest/gtest.h>

#include "sm/memory_model.h"

namespace bow {
namespace {

TEST(MemoryStore, ReadAfterWrite)
{
    MemoryStore m;
    m.store(MemSpace::Global, 0x100, 42);
    EXPECT_EQ(m.load(MemSpace::Global, 0x100), 42u);
}

TEST(MemoryStore, SpacesAreIndependent)
{
    MemoryStore m;
    m.store(MemSpace::Global, 0x100, 1);
    m.store(MemSpace::Shared, 0x100, 2);
    m.store(MemSpace::Const, 0x100, 3);
    EXPECT_EQ(m.load(MemSpace::Global, 0x100), 1u);
    EXPECT_EQ(m.load(MemSpace::Shared, 0x100), 2u);
    EXPECT_EQ(m.load(MemSpace::Const, 0x100), 3u);
}

TEST(MemoryStore, UnwrittenLocationsAreDeterministic)
{
    MemoryStore a;
    MemoryStore b;
    EXPECT_EQ(a.load(MemSpace::Global, 0xDEAD),
              b.load(MemSpace::Global, 0xDEAD));
    // Different addresses should (practically) differ.
    EXPECT_NE(a.load(MemSpace::Global, 0x10),
              a.load(MemSpace::Global, 0x14));
    // Different spaces at the same address differ too.
    EXPECT_NE(a.load(MemSpace::Global, 0x10),
              a.load(MemSpace::Shared, 0x10));
}

TEST(MemoryStore, FillWritesConsecutiveWords)
{
    MemoryStore m;
    m.fill(MemSpace::Global, 0x200, {1, 2, 3});
    EXPECT_EQ(m.load(MemSpace::Global, 0x200), 1u);
    EXPECT_EQ(m.load(MemSpace::Global, 0x204), 2u);
    EXPECT_EQ(m.load(MemSpace::Global, 0x208), 3u);
}

TEST(MemoryStore, ContentsEqualComparesWrites)
{
    MemoryStore a;
    MemoryStore b;
    EXPECT_TRUE(a.contentsEqual(b));
    a.store(MemSpace::Global, 4, 9);
    EXPECT_FALSE(a.contentsEqual(b));
    b.store(MemSpace::Global, 4, 9);
    EXPECT_TRUE(a.contentsEqual(b));
}

class MemoryTimingTest : public ::testing::Test
{
  protected:
    SimConfig config = SimConfig::titanXPascal();
};

TEST_F(MemoryTimingTest, ColdMissThenHit)
{
    MemoryTiming t(config);
    const unsigned miss = t.access(MemSpace::Global, 0x1000, false);
    EXPECT_GT(miss, config.l1Latency);
    const unsigned hit = t.access(MemSpace::Global, 0x1000, false);
    EXPECT_EQ(hit, config.l1Latency);
    EXPECT_EQ(t.stats().counterValue("l1_hits"), 1u);
    EXPECT_EQ(t.stats().counterValue("l1_misses"), 1u);
}

TEST_F(MemoryTimingTest, SameLineIsAHit)
{
    MemoryTiming t(config);
    t.access(MemSpace::Global, 0x1000, false);
    const unsigned hit = t.access(MemSpace::Global, 0x1004, false);
    EXPECT_EQ(hit, config.l1Latency);
}

TEST_F(MemoryTimingTest, L2CatchesL1Evictions)
{
    MemoryTiming t(config);
    // Touch the same L1 set with more lines than its associativity:
    // L1 sets = 48KB / 128B / 6 ways = 64 sets, so addresses 64*128
    // bytes apart collide in set 0.
    const unsigned setStride = 64 * 128;
    for (unsigned i = 0; i < config.l1Ways + 2; ++i)
        t.access(MemSpace::Global, i * setStride, false);
    // Address 0 was evicted from L1 but lives in L2.
    const unsigned lat = t.access(MemSpace::Global, 0, false);
    EXPECT_EQ(lat, config.l1Latency + config.l2Latency);
}

TEST_F(MemoryTimingTest, SharedAndConstHaveFixedLatency)
{
    MemoryTiming t(config);
    EXPECT_EQ(t.access(MemSpace::Shared, 0x42, false),
              config.sharedLatency);
    EXPECT_EQ(t.access(MemSpace::Const, 0x42, false),
              config.l1Latency);
}

TEST_F(MemoryTimingTest, StoresAreWriteThroughNoAllocate)
{
    MemoryTiming t(config);
    const unsigned st = t.access(MemSpace::Global, 0x5000, true);
    EXPECT_EQ(st, config.l1Latency);
    // The store did not allocate in L1, but it did allocate in L2.
    const unsigned ld = t.access(MemSpace::Global, 0x5000, false);
    EXPECT_EQ(ld, config.l1Latency + config.l2Latency);
}

TEST_F(MemoryTimingTest, DramLatencyOnFullMiss)
{
    MemoryTiming t(config);
    const unsigned lat = t.access(MemSpace::Global, 0x7777000, false);
    EXPECT_EQ(lat, config.l1Latency + config.l2Latency +
                       config.dramLatency);
}

} // namespace
} // namespace bow
