/**
 * @file
 * MetricsRegistry: name validation and kind collisions, dotted-path
 * lookup, merge semantics, JSON round-trip (including NaN -> null),
 * the StatGroup export shim, and determinism of the global aggregate
 * across ParallelRunner job counts.
 */

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "core/parallel_runner.h"
#include "workloads/registry.h"

namespace bow {
namespace {

TEST(Metrics, CounterValueHistBasics)
{
    MetricsRegistry m;
    m.addCounter("sm0.boc.bypass_hits");
    m.addCounter("sm0.boc.bypass_hits", 4);
    m.setValue("sm0.core.ipc", 0.75);
    m.setHist("sm0.oc.src_operands_hist", {1, 2, 3});

    EXPECT_EQ(m.size(), 3u);
    EXPECT_TRUE(m.has("sm0.boc.bypass_hits"));
    EXPECT_FALSE(m.has("sm0.boc"));
    EXPECT_EQ(m.counter("sm0.boc.bypass_hits"), 5u);
    EXPECT_DOUBLE_EQ(m.value("sm0.core.ipc"), 0.75);
    EXPECT_EQ(m.hist("sm0.oc.src_operands_hist"),
              (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(m.kindOf("sm0.core.ipc"), MetricKind::Value);
}

TEST(Metrics, UnregisteredLookupsReturnZero)
{
    const MetricsRegistry m;
    EXPECT_EQ(m.counter("no.such.counter"), 0u);
    EXPECT_DOUBLE_EQ(m.value("no.such.value"), 0.0);
    EXPECT_TRUE(m.hist("no.such.hist").empty());
    EXPECT_FALSE(m.has("no.such.counter"));
    EXPECT_THROW(m.kindOf("no.such.counter"), PanicError);
}

TEST(Metrics, KindCollisionPanics)
{
    MetricsRegistry m;
    m.addCounter("sm0.rf.reads");
    EXPECT_THROW(m.setValue("sm0.rf.reads", 1.0), PanicError);
    EXPECT_THROW(m.setHist("sm0.rf.reads", {1}), PanicError);
    EXPECT_THROW(m.value("sm0.rf.reads"), PanicError);
}

TEST(Metrics, InvalidPathsPanic)
{
    MetricsRegistry m;
    EXPECT_THROW(m.addCounter(""), PanicError);
    EXPECT_THROW(m.addCounter("Upper.case"), PanicError);
    EXPECT_THROW(m.addCounter("a..b"), PanicError);
    EXPECT_THROW(m.addCounter(".a"), PanicError);
    EXPECT_THROW(m.addCounter("a."), PanicError);
    EXPECT_THROW(m.addCounter("a b"), PanicError);
}

TEST(Metrics, MergeSumsAndExtends)
{
    MetricsRegistry a;
    a.addCounter("c", 2);
    a.setValue("v", 1.5);
    a.setHist("h", {1, 1});

    MetricsRegistry b;
    b.addCounter("c", 3);
    b.addCounter("only_b", 7);
    b.setValue("v", 2.5);
    b.setHist("h", {1, 1, 1});

    a.merge(b);
    EXPECT_EQ(a.counter("c"), 5u);
    EXPECT_EQ(a.counter("only_b"), 7u);
    EXPECT_DOUBLE_EQ(a.value("v"), 4.0);
    EXPECT_EQ(a.hist("h"), (std::vector<std::uint64_t>{2, 2, 1}));

    MetricsRegistry wrong;
    wrong.setValue("c", 1.0);
    EXPECT_THROW(a.merge(wrong), PanicError);
}

TEST(Metrics, JsonRoundTrip)
{
    MetricsRegistry m;
    m.addCounter("sm0.rf.reads", 1234567890123ull);
    m.setValue("sm0.core.ipc", 0.8993754337265788);
    m.setValue("sm0.empty.mean",
               std::numeric_limits<double>::quiet_NaN());
    m.setHist("sm0.boc.occupancy_hist", {0, 5, 9});

    const std::string dumped = m.toJson().dump(2);
    // Non-finite doubles must serialize as null, never "nan"/"inf".
    EXPECT_EQ(dumped.find("nan"), std::string::npos);
    EXPECT_NE(dumped.find("null"), std::string::npos);

    const MetricsRegistry back =
        MetricsRegistry::fromJson(parseJson(dumped));
    EXPECT_EQ(back.counter("sm0.rf.reads"), 1234567890123ull);
    EXPECT_DOUBLE_EQ(back.value("sm0.core.ipc"),
                     0.8993754337265788);
    EXPECT_TRUE(std::isnan(back.value("sm0.empty.mean")));
    EXPECT_EQ(back.hist("sm0.boc.occupancy_hist"),
              (std::vector<std::uint64_t>{0, 5, 9}));
    // The kind distinction survives the round trip.
    EXPECT_EQ(back.kindOf("sm0.rf.reads"), MetricKind::Counter);
    EXPECT_EQ(back.kindOf("sm0.core.ipc"), MetricKind::Value);
    // And a second trip is byte-stable.
    EXPECT_EQ(back.toJson().dump(2), dumped);
}

TEST(Metrics, StatGroupExportShim)
{
    StatGroup g("rf");
    g.counter("reads").inc(10);
    g.average("queue_depth").sample(2.0);
    g.average("queue_depth").sample(4.0);
    g.histogram("burst", 4).sample(1);

    MetricsRegistry m;
    g.exportTo(m, "sm0.rf_banks");
    EXPECT_EQ(m.counter("sm0.rf_banks.reads"), 10u);
    EXPECT_DOUBLE_EQ(m.value("sm0.rf_banks.queue_depth.mean"), 3.0);
    EXPECT_EQ(m.counter("sm0.rf_banks.queue_depth.samples"), 2u);
    // 4 exact buckets + the overflow bucket.
    EXPECT_EQ(m.hist("sm0.rf_banks.burst").size(), 5u);

    // An empty Average exports a NaN mean (-> JSON null), not 0.
    StatGroup empty("none");
    empty.average("idle");
    MetricsRegistry m2;
    empty.exportTo(m2, "x");
    EXPECT_TRUE(std::isnan(m2.value("x.idle.mean")));
}

TEST(Metrics, SimResultCarriesFullSnapshot)
{
    const Workload wl = workloads::make("VECTORADD", 0.02);
    const SimResult res =
        ParallelRunner(1).runOne(SimJob(wl, Architecture::BOW_WR));

    EXPECT_EQ(res.metrics.counter("sm0.core.cycles"),
              res.stats.cycles);
    EXPECT_EQ(res.metrics.counter("sm0.core.instructions"),
              res.stats.instructions);
    EXPECT_EQ(res.metrics.counter("sm0.boc.bypass_hits"),
              res.stats.bocForwards);
    EXPECT_EQ(res.metrics.counter("sm0.rf.reads"),
              res.stats.rfReads);
    EXPECT_DOUBLE_EQ(res.metrics.value("sm0.core.ipc"),
                     res.stats.ipc());
    EXPECT_DOUBLE_EQ(res.metrics.value("sm0.energy.total_pj"),
                     res.energy.totalPj);
    EXPECT_GT(res.metrics.size(), 30u);
}

/** The aggregate of a batch must be identical at any job count. */
TEST(Metrics, ParallelAggregationDeterminism)
{
    const Workload wl = workloads::make("VECTORADD", 0.02);
    std::vector<SimJob> jobs;
    for (const Architecture arch :
         {Architecture::Baseline, Architecture::BOW,
          Architecture::BOW_WR, Architecture::RFC})
        jobs.emplace_back(wl, arch);

    const bool wasEnabled = metricsAggregationEnabled();
    setMetricsAggregation(true);

    globalMetrics().clear();
    ParallelRunner(1).run(jobs);
    const std::string serial = globalMetrics().toJson().dump();

    globalMetrics().clear();
    ParallelRunner(4).run(jobs);
    const std::string parallel = globalMetrics().toJson().dump();

    setMetricsAggregation(wasEnabled);
    globalMetrics().clear();
    EXPECT_EQ(serial, parallel);
    EXPECT_FALSE(serial.empty());
}

TEST(Metrics, AggregationOffByDefault)
{
    // Benches must pay nothing unless BOWSIM_METRICS_OUT (or the CLI
    // flag) arms aggregation; this also guards against a stray
    // global flag leaking between tests.
    if (!metricsAggregationEnabled()) {
        globalMetrics().clear();
        const Workload wl = workloads::make("VECTORADD", 0.02);
        ParallelRunner(1).runOne(SimJob(wl, Architecture::Baseline));
        EXPECT_EQ(globalMetrics().size(), 0u);
    }
}

} // namespace
} // namespace bow
