/**
 * @file
 * End-to-end guards on the paper's headline claims (EXPERIMENTS.md):
 * run the full Table III suite at reduced scale and assert every
 * reproduced trend stays inside a generous band around the paper's
 * numbers. These tests are the canary for calibration drift — if one
 * fails after a model change, re-run the benches and re-validate
 * EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "compiler/reuse.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"

namespace bow {
namespace {

constexpr double kScale = 0.2;

class PaperClaims : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        suite_ = new std::vector<Workload>(workloads::makeAll(kScale));
    }

    static void
    TearDownTestSuite()
    {
        delete suite_;
        suite_ = nullptr;
    }

    static const std::vector<Workload> &suite() { return *suite_; }

  private:
    static std::vector<Workload> *suite_;
};

std::vector<Workload> *PaperClaims::suite_ = nullptr;

TEST_F(PaperClaims, ReadBypassFractionAtIw3)
{
    // Paper: 59% of reads bypassable at IW=3 (45% at IW=2).
    double acc3 = 0.0;
    double acc2 = 0.0;
    for (const auto &wl : suite()) {
        const auto fn = runFunctional(wl.launch);
        acc3 += analyzeReuse(wl.launch.kernel, fn.traces, 3)
                    .readFraction();
        acc2 += analyzeReuse(wl.launch.kernel, fn.traces, 2)
                    .readFraction();
    }
    const double n = static_cast<double>(suite().size());
    EXPECT_NEAR(acc3 / n, 0.59, 0.10);
    EXPECT_NEAR(acc2 / n, 0.45, 0.10);
}

TEST_F(PaperClaims, WriteBypassFractionAtIw3)
{
    // Paper: 52% of writes bypassable at IW=3.
    double acc = 0.0;
    for (const auto &wl : suite()) {
        const auto fn = runFunctional(wl.launch);
        acc += analyzeReuse(wl.launch.kernel, fn.traces, 3)
                   .writeFraction();
    }
    EXPECT_NEAR(acc / static_cast<double>(suite().size()), 0.52,
                0.10);
}

TEST_F(PaperClaims, EnergySavingBands)
{
    // Paper Fig. 13: BOW saves ~36%, BOW-WR ~55% of RF dynamic
    // energy.
    double accBow = 0.0;
    double accWr = 0.0;
    for (const auto &wl : suite()) {
        const auto base =
            Simulator(configFor(Architecture::Baseline))
                .run(wl.launch);
        const auto bow = Simulator(configFor(Architecture::BOW, 3))
                             .run(wl.launch);
        const auto wr =
            Simulator(configFor(Architecture::BOW_WR_OPT, 3))
                .run(wl.launch);
        accBow += 1.0 - bow.energy.normalizedTo(base.energy);
        accWr += 1.0 - wr.energy.normalizedTo(base.energy);
    }
    const double n = static_cast<double>(suite().size());
    EXPECT_NEAR(accBow / n, 0.36, 0.08);
    EXPECT_NEAR(accWr / n, 0.55, 0.08);
}

TEST_F(PaperClaims, IpcGainsArePositiveAndKneeAtIw3)
{
    // Paper Fig. 10: positive average gains that barely grow past
    // IW=3. Our reproduction averages ~+9% (paper +11-13%).
    unsigned positive = 0;
    double acc2 = 0.0;
    double acc3 = 0.0;
    double acc4 = 0.0;
    for (const auto &wl : suite()) {
        const double base =
            Simulator(configFor(Architecture::Baseline))
                .run(wl.launch)
                .stats.ipc();
        const double g2 = improvementPct(
            Simulator(configFor(Architecture::BOW_WR_OPT, 2))
                .run(wl.launch)
                .stats.ipc(),
            base);
        const double g3 = improvementPct(
            Simulator(configFor(Architecture::BOW_WR_OPT, 3))
                .run(wl.launch)
                .stats.ipc(),
            base);
        const double g4 = improvementPct(
            Simulator(configFor(Architecture::BOW_WR_OPT, 4))
                .run(wl.launch)
                .stats.ipc(),
            base);
        if (g3 > 0.0)
            ++positive;
        acc2 += g2;
        acc3 += g3;
        acc4 += g4;
    }
    const double n = static_cast<double>(suite().size());
    EXPECT_GE(positive, suite().size() - 2);
    EXPECT_GT(acc3 / n, 5.0);          // substantial average gain
    EXPECT_GT(acc3 / n, acc2 / n);     // rises to IW=3
    EXPECT_LT(acc4 / n - acc3 / n, 3.0); // flattens after
}

TEST_F(PaperClaims, TransientWriteShareAtIw3)
{
    // Paper Fig. 7: 52% of computed values are transient.
    double acc = 0.0;
    for (const auto &wl : suite()) {
        const auto res =
            Simulator(configFor(Architecture::BOW_WR_OPT, 3))
                .run(wl.launch);
        const auto &s = res.stats;
        const double total = static_cast<double>(
            s.destRfOnly + s.destBocOnly + s.destBocAndRf);
        acc += total ? static_cast<double>(s.destBocOnly) / total
                     : 0.0;
    }
    EXPECT_NEAR(acc / static_cast<double>(suite().size()), 0.52,
                0.10);
}

TEST_F(PaperClaims, HalfSizeBocCostsLittle)
{
    // Paper Sec. V-A: halving the BOC costs ~2% on average.
    double accFull = 0.0;
    double accHalf = 0.0;
    for (const auto &wl : suite()) {
        const double base =
            Simulator(configFor(Architecture::Baseline))
                .run(wl.launch)
                .stats.ipc();
        accFull += improvementPct(
            Simulator(configFor(Architecture::BOW_WR_OPT, 3, 12))
                .run(wl.launch)
                .stats.ipc(),
            base);
        accHalf += improvementPct(
            Simulator(configFor(Architecture::BOW_WR_OPT, 3, 6))
                .run(wl.launch)
                .stats.ipc(),
            base);
    }
    const double n = static_cast<double>(suite().size());
    EXPECT_LT(accFull / n - accHalf / n, 3.0);
}

TEST_F(PaperClaims, RfcSavesEnergyButLessThanBow)
{
    // Paper Sec. V-A: RFC gains little performance and saves less
    // energy than BOW-WR.
    double accRfcIpc = 0.0;
    double accRfcE = 0.0;
    double accWrE = 0.0;
    for (const auto &wl : suite()) {
        const auto base =
            Simulator(configFor(Architecture::Baseline))
                .run(wl.launch);
        const auto rfc =
            Simulator(configFor(Architecture::RFC)).run(wl.launch);
        const auto wr =
            Simulator(configFor(Architecture::BOW_WR_OPT, 3, 6))
                .run(wl.launch);
        accRfcIpc += improvementPct(rfc.stats.ipc(),
                                    base.stats.ipc());
        accRfcE += rfc.energy.normalizedTo(base.energy);
        accWrE += wr.energy.normalizedTo(base.energy);
    }
    const double n = static_cast<double>(suite().size());
    EXPECT_LT(accRfcIpc / n, 6.0);     // far below BOW's gain
    EXPECT_GT(accRfcE / n, accWrE / n); // BOW-WR saves more energy
}

} // namespace
} // namespace bow
