/**
 * @file
 * Tests for the parallel simulation engine: the thread pool, the
 * memoizing result cache, and the determinism contract — parallel
 * execution at any job count returns results bit-identical to a
 * serial run, in submission order.
 */

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/parallel_runner.h"
#include "core/result_cache.h"
#include "core/thread_pool.h"
#include "workloads/registry.h"

using namespace bow;

namespace {

/** Workload scale small enough for a full-suite sweep per test. */
constexpr double kScale = 0.05;

/** Field-by-field equality of two simulation results. */
void
expectResultsEqual(const SimResult &a, const SimResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.arch, b.arch) << what;
    EXPECT_EQ(a.windowSize, b.windowSize) << what;
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << what;
    EXPECT_EQ(a.stats.instructions, b.stats.instructions) << what;
    EXPECT_EQ(a.stats.rfReads, b.stats.rfReads) << what;
    EXPECT_EQ(a.stats.rfWrites, b.stats.rfWrites) << what;
    EXPECT_EQ(a.stats.bocForwards, b.stats.bocForwards) << what;
    EXPECT_EQ(a.stats.consolidatedWrites, b.stats.consolidatedWrites)
        << what;
    EXPECT_EQ(a.stats.transientDrops, b.stats.transientDrops) << what;
    EXPECT_EQ(a.stats.safetyWrites, b.stats.safetyWrites) << what;
    EXPECT_EQ(a.stats.destRfOnly, b.stats.destRfOnly) << what;
    EXPECT_EQ(a.stats.destBocOnly, b.stats.destBocOnly) << what;
    EXPECT_EQ(a.stats.destBocAndRf, b.stats.destBocAndRf) << what;
    EXPECT_EQ(a.stats.bankReadConflicts, b.stats.bankReadConflicts)
        << what;
    EXPECT_EQ(a.stats.ocCyclesMem, b.stats.ocCyclesMem) << what;
    EXPECT_EQ(a.stats.ocCyclesNonMem, b.stats.ocCyclesNonMem) << what;
    EXPECT_EQ(a.stats.l1Hits, b.stats.l1Hits) << what;
    EXPECT_EQ(a.stats.l1Misses, b.stats.l1Misses) << what;
    EXPECT_DOUBLE_EQ(a.energy.rfDynamicPj, b.energy.rfDynamicPj)
        << what;
    EXPECT_DOUBLE_EQ(a.energy.overheadPj, b.energy.overheadPj)
        << what;
    EXPECT_EQ(a.tags.rfOnly, b.tags.rfOnly) << what;
    EXPECT_EQ(a.tags.bocOnly, b.tags.bocOnly) << what;
    EXPECT_EQ(a.tags.bocAndRf, b.tags.bocAndRf) << what;
    ASSERT_EQ(a.finalRegs.size(), b.finalRegs.size()) << what;
    for (std::size_t w = 0; w < a.finalRegs.size(); ++w)
        EXPECT_EQ(a.finalRegs[w], b.finalRegs[w]) << what;
    EXPECT_TRUE(a.finalMem.contentsEqual(b.finalMem)) << what;
}

/** The full-suite job mix the determinism tests replay: every
 *  workload under several architectures and windows. */
std::vector<SimJob>
suiteJobs(const std::vector<Workload> &suite)
{
    std::vector<SimJob> jobs;
    for (const Workload &wl : suite) {
        jobs.emplace_back(wl, Architecture::Baseline);
        jobs.emplace_back(wl, Architecture::BOW, 3);
        jobs.emplace_back(wl, Architecture::BOW_WR_OPT, 2);
        jobs.emplace_back(wl, Architecture::BOW_WR_OPT, 3, 6);
    }
    return jobs;
}

class ParallelRunnerTest : public ::testing::Test
{
  protected:
    void SetUp() override { globalResultCache().reset(); }
    void TearDown() override { globalResultCache().reset(); }
};

TEST(ThreadPoolTest, ExecutesEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.post([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.post([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
    }
}

TEST(ThreadPoolTest, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.post([&count] { count.fetch_add(1); });
    }
    EXPECT_EQ(count.load(), 50);
}

// Regression: a task that threw used to escape the worker thread
// (std::terminate) — and had the catch been added naively around
// task() without the RAII-ordered decrement, running_ would stay
// stuck and every later wait() would hang on the barrier.
TEST(ThreadPoolTest, ThrowingTaskDoesNotLeakTheBarrier)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
        pool.post([&count, i] {
            if (i == 7)
                throw std::runtime_error("task 7 exploded");
            count.fetch_add(1);
        });
    }
    // The barrier must release (all 20 tasks ran to a conclusion)
    // and then surface the stored exception.
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 19);

    // The error was observed once; the pool is reusable and clean.
    for (int i = 0; i < 10; ++i)
        pool.post([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 29);
}

TEST(ThreadPoolTest, OnlyFirstTaskExceptionIsKept)
{
    ThreadPool pool(4);
    for (int i = 0; i < 8; ++i)
        pool.post([] { throw FatalError("boom"); });
    // All eight threw; exactly one surfaces, the rest are dropped
    // after their tasks completed.
    EXPECT_THROW(pool.wait(), FatalError);
    // A second wait() on the now-idle pool must not rethrow.
    pool.wait();
}

TEST_F(ParallelRunnerTest, ParallelMatchesSerialAcrossJobCounts)
{
    const auto suite = workloads::makeAll(kScale);
    const auto jobs = suiteJobs(suite);

    // BOWSIM_JOBS=1: the reference serial pass (fresh cache so every
    // result is actually simulated).
    const auto serial = ParallelRunner(1).run(jobs);
    ASSERT_EQ(serial.size(), jobs.size());

    for (unsigned workers : {2u, 8u}) {
        globalResultCache().reset();
        const auto parallel = ParallelRunner(workers).run(jobs);
        ASSERT_EQ(parallel.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            expectResultsEqual(
                serial[i], parallel[i],
                strf("job ", i, " (", jobs[i].workload->name,
                     "), workers=", workers));
        }
    }
}

TEST_F(ParallelRunnerTest, ResultsComeBackInSubmissionOrder)
{
    const auto suite = workloads::makeAll(kScale);

    // Mixed-cost jobs in a known order; each job's result must land
    // at its submission index regardless of completion order.
    std::vector<SimJob> jobs;
    for (const Workload &wl : suite) {
        jobs.emplace_back(wl, Architecture::Baseline);
        jobs.emplace_back(wl, Architecture::BOW_WR_OPT, 4);
    }
    const auto results = ParallelRunner(8).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &expect = jobs[i].config;
        EXPECT_EQ(results[i].arch, archName(expect.arch))
            << "index " << i;
        EXPECT_EQ(results[i].windowSize, expect.windowSize)
            << "index " << i;
    }
    // Per-workload spot check: each pair's instruction counts match
    // an independent single run of that workload.
    for (std::size_t w = 0; w < suite.size(); ++w) {
        const auto one =
            ParallelRunner(1).runOne(SimJob(suite[w],
                                            Architecture::Baseline));
        EXPECT_EQ(results[2 * w].stats.instructions,
                  one.stats.instructions)
            << suite[w].name;
    }
}

TEST_F(ParallelRunnerTest, CacheCountsHitsAndSkipsResimulation)
{
    const auto suite = workloads::makeAll(kScale);
    const std::vector<SimJob> jobs = {
        SimJob(suite[0], Architecture::Baseline),
        SimJob(suite[1], Architecture::Baseline),
    };

    ParallelRunner runner(2);
    const std::uint64_t simsBefore = ParallelRunner::simulationsRun();
    runner.run(jobs);
    EXPECT_EQ(globalResultCache().hits(), 0u);
    EXPECT_EQ(globalResultCache().misses(), 2u);
    EXPECT_EQ(ParallelRunner::simulationsRun() - simsBefore, 2u);

    // Identical batch again: all hits, no new simulations.
    const auto again = runner.run(jobs);
    EXPECT_EQ(globalResultCache().hits(), 2u);
    EXPECT_EQ(globalResultCache().misses(), 2u);
    EXPECT_EQ(ParallelRunner::simulationsRun() - simsBefore, 2u);

    // And the cached results are the same bits.
    const auto fresh = ParallelRunner(1).runOne(jobs[0]);
    expectResultsEqual(again[0], fresh, suite[0].name);
}

TEST_F(ParallelRunnerTest, CacheKeyDiscriminatesConfigAndContent)
{
    const auto suite = workloads::makeAll(kScale);
    const Workload &wl = suite[0];

    const auto k1 = simCacheKey(wl, configFor(Architecture::Baseline));
    const auto k2 = simCacheKey(wl, configFor(Architecture::BOW, 3));
    const auto k3 = simCacheKey(wl, configFor(Architecture::BOW, 4));
    EXPECT_NE(k1, k2);
    EXPECT_NE(k2, k3);

    SimConfig banks = configFor(Architecture::Baseline);
    banks.numBanks = 16;
    EXPECT_NE(k1, simCacheKey(wl, banks));

    // Same name + scale but different program content must not alias
    // (the reordering ablation and --asm overrides depend on this).
    Workload tweaked = wl;
    ASSERT_FALSE(tweaked.launch.kernel.empty());
    tweaked.launch.numWarps = wl.launch.numWarps + 1;
    EXPECT_NE(k1,
              simCacheKey(tweaked, configFor(Architecture::Baseline)));
}

TEST_F(ParallelRunnerTest, DefaultJobsHonorsEnvAndOverride)
{
    ParallelRunner::setDefaultJobs(3);
    EXPECT_EQ(ParallelRunner::defaultJobs(), 3u);
    EXPECT_EQ(ParallelRunner().jobs(), 3u);
    ParallelRunner::setDefaultJobs(0);
    EXPECT_GE(ParallelRunner::defaultJobs(), 1u);
}

} // namespace
