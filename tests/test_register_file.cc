/**
 * @file
 * Banked register-file timing tests: swizzled bank mapping, one
 * request per bank per cycle, FIFO ordering and conflict counting.
 */

#include <gtest/gtest.h>

#include "sm/register_file.h"

namespace bow {
namespace {

class RegisterFileTest : public ::testing::Test
{
  protected:
    SimConfig config = SimConfig::titanXPascal();
};

TEST_F(RegisterFileTest, SwizzledBankMapping)
{
    RegisterFile rf(config);
    EXPECT_EQ(rf.bankOf(0, 0), 0);
    EXPECT_EQ(rf.bankOf(0, 5), 5);
    EXPECT_EQ(rf.bankOf(1, 5), 6);
    EXPECT_EQ(rf.bankOf(3, 31), (31 + 3) % 32);
    EXPECT_EQ(rf.bankOf(1, 31), 0);
}

TEST_F(RegisterFileTest, DifferentBanksServeInParallel)
{
    RegisterFile rf(config);
    rf.pushRead(0, 0, 1);
    rf.pushRead(0, 1, 2);
    rf.pushRead(0, 2, 3);
    const auto served = rf.tick();
    EXPECT_EQ(served.size(), 3u);
    EXPECT_EQ(rf.pending(), 0u);
}

TEST_F(RegisterFileTest, SameBankSerializes)
{
    RegisterFile rf(config);
    // Same (warp, reg) twice and a same-bank conflict from another
    // warp: (w=0,r=4) and (w=1,r=3) both map to bank 4.
    rf.pushRead(0, 4, 1);
    rf.pushRead(1, 3, 2);
    auto first = rf.tick();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].collector, 1u);
    auto second = rf.tick();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].collector, 2u);
    EXPECT_EQ(rf.stats().counterValue("read_conflicts"), 1u);
}

TEST_F(RegisterFileTest, WriteBeforeReadStaysOrdered)
{
    RegisterFile rf(config);
    rf.pushWrite(0, 4, false);
    rf.pushRead(0, 4, 7);
    auto first = rf.tick();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_TRUE(first[0].isWrite);
    auto second = rf.tick();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_FALSE(second[0].isWrite);
}

TEST_F(RegisterFileTest, WritesHavePriorityOverQueuedReads)
{
    RegisterFile rf(config);
    rf.pushRead(0, 4, 7);
    rf.pushWrite(0, 4, false);
    auto first = rf.tick();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_TRUE(first[0].isWrite);
}

TEST_F(RegisterFileTest, ReadsStayFifoAmongThemselves)
{
    RegisterFile rf(config);
    rf.pushRead(0, 4, 1);   // bank 4
    rf.pushRead(1, 3, 2);   // bank 4 as well
    auto first = rf.tick();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].collector, 1u);
}

TEST_F(RegisterFileTest, ServeCountsReadsAndWrites)
{
    RegisterFile rf(config);
    rf.pushRead(0, 1, 0);
    rf.pushWrite(0, 2, true);
    auto served = rf.tick();
    EXPECT_EQ(served.size(), 2u);
    EXPECT_EQ(rf.stats().counterValue("reads"), 1u);
    EXPECT_EQ(rf.stats().counterValue("writes"), 1u);
    bool sawRelease = false;
    for (const auto &req : served)
        sawRelease |= (req.isWrite && req.releaseOnComplete);
    EXPECT_TRUE(sawRelease);
}

TEST_F(RegisterFileTest, EmptyTickServesNothing)
{
    RegisterFile rf(config);
    EXPECT_TRUE(rf.tick().empty());
}

TEST_F(RegisterFileTest, PendingCountsQueuedRequests)
{
    RegisterFile rf(config);
    rf.pushRead(0, 0, 1);
    rf.pushRead(0, 32, 2); // same bank as reg 0 (32 banks)
    EXPECT_EQ(rf.pending(), 2u);
    rf.tick();
    EXPECT_EQ(rf.pending(), 1u);
}

} // namespace
} // namespace bow
