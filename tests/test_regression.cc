/**
 * @file
 * Golden-value regression tests. The simulator and workloads are
 * fully deterministic, so these exact numbers must reproduce on every
 * platform; any change here means the timing or reuse model changed
 * and the paper-reproduction figures in EXPERIMENTS.md must be
 * re-validated.
 */

#include <gtest/gtest.h>

#include "compiler/reuse.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/registry.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

struct Golden
{
    Architecture arch;
    Cycle cycles;
    std::uint64_t insts;
    std::uint64_t rfReads;
    std::uint64_t rfWrites;
    std::uint64_t forwards;
};

TEST(Regression, ChainLoopTimingGoldenValues)
{
    const Launch launch = snippets::chainLoop(8, 16);
    const Golden golden[] = {
        {Architecture::Baseline, 719, 936, 1288, 792, 0},
        {Architecture::RFC, 622, 936, 0, 48, 0},
        {Architecture::BOW, 558, 936, 392, 792, 896},
        {Architecture::BOW_WR, 541, 936, 392, 664, 896},
        {Architecture::BOW_WR_OPT, 543, 936, 392, 280, 896},
    };
    for (const Golden &g : golden) {
        Simulator sim(configFor(g.arch, 3));
        const auto r = sim.run(launch);
        EXPECT_EQ(r.stats.cycles, g.cycles) << archName(g.arch);
        EXPECT_EQ(r.stats.instructions, g.insts) << archName(g.arch);
        EXPECT_EQ(r.stats.rfReads, g.rfReads) << archName(g.arch);
        EXPECT_EQ(r.stats.rfWrites, g.rfWrites) << archName(g.arch);
        EXPECT_EQ(r.stats.bocForwards, g.forwards)
            << archName(g.arch);
    }
}

TEST(Regression, TimingOrderingAcrossArchitectures)
{
    // Relations the golden values encode, kept as explicit
    // assertions so a re-pin cannot silently invert them.
    const Launch launch = snippets::chainLoop(8, 16);
    auto cyclesOf = [&](Architecture arch) {
        Simulator sim(configFor(arch, 3));
        return sim.run(launch).stats.cycles;
    };
    const Cycle base = cyclesOf(Architecture::Baseline);
    EXPECT_LT(cyclesOf(Architecture::BOW), base);
    EXPECT_LT(cyclesOf(Architecture::BOW_WR),
              cyclesOf(Architecture::BOW));
}

TEST(Regression, LibReuseGoldenValues)
{
    const auto wl = workloads::make("LIB", 0.1);
    const auto fn = runFunctional(wl.launch);

    const struct
    {
        unsigned iw;
        std::uint64_t bypassedReads;
        std::uint64_t totalReads;
        std::uint64_t bypassedWrites;
        std::uint64_t totalWrites;
    } golden[] = {
        {2, 2336, 6432, 1472, 4320},
        {3, 3808, 6432, 2432, 4320},
        {4, 4000, 6432, 2560, 4320},
    };
    for (const auto &g : golden) {
        const auto s = analyzeReuse(wl.launch.kernel, fn.traces, g.iw);
        EXPECT_EQ(s.bypassedReads, g.bypassedReads) << "iw=" << g.iw;
        EXPECT_EQ(s.totalReads, g.totalReads) << "iw=" << g.iw;
        EXPECT_EQ(s.bypassedWrites, g.bypassedWrites)
            << "iw=" << g.iw;
        EXPECT_EQ(s.totalWrites, g.totalWrites) << "iw=" << g.iw;
    }
}

TEST(Regression, WorkloadKernelsAreStable)
{
    // The generated kernels themselves are part of the calibration:
    // pin their sizes and register footprints.
    const struct
    {
        const char *name;
        std::size_t insts;
        unsigned gprs;
    } golden[] = {
        {"LIB", 84, 20},
        {"BFS", 70, 20},
        {"WP", 104, 36},
        {"VECTORADD", 36, 16},
        {"SAD", 98, 28},
    };
    for (const auto &g : golden) {
        const auto wl = workloads::make(g.name, 0.1);
        EXPECT_EQ(wl.launch.kernel.size(), g.insts) << g.name;
        EXPECT_EQ(wl.launch.kernel.numGprs(), g.gprs) << g.name;
    }
}

} // namespace
} // namespace bow
