/**
 * @file
 * Bypass-aware reordering pass tests: dependence preservation,
 * functional equivalence, never-regress acceptance, and improvement
 * on poorly scheduled code.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "compiler/reorder.h"
#include "compiler/reuse.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "sm/functional.h"
#include "workloads/registry.h"

namespace bow {
namespace {

double
readFractionAt3(const Launch &launch)
{
    const auto fn = runFunctional(launch);
    return analyzeReuse(launch.kernel, fn.traces, 3).readFraction();
}

TEST(Reorder, RejectsTinyWindow)
{
    Kernel k = assemble("nop; exit;");
    EXPECT_THROW(reorderForBypass(k, 1), FatalError);
}

TEST(Reorder, ImprovesInterleavedProducersConsumers)
{
    // Producers first, consumers far away: classic bad schedule.
    const char *src =
        "mov $r1, 1;\n"
        "mov $r2, 2;\n"
        "mov $r3, 3;\n"
        "mov $r4, 4;\n"
        "mov $r5, 5;\n"
        "mov $r6, 6;\n"
        "add $r7, $r1, $r1;\n"
        "add $r8, $r2, $r2;\n"
        "add $r9, $r3, $r3;\n"
        "add $r10, $r4, $r4;\n"
        "add $r11, $r5, $r5;\n"
        "add $r12, $r6, $r6;\n"
        "exit;";
    Launch launch;
    launch.kernel = assemble(src, "interleave");
    launch.numWarps = 1;

    const double before = readFractionAt3(launch);
    Launch moved = launch;
    const auto stats = reorderForBypass(moved.kernel, 3);
    const double after = readFractionAt3(moved);
    EXPECT_GT(stats.instsMoved, 0u);
    EXPECT_GT(after, before);
}

TEST(Reorder, PreservesFunctionalResults)
{
    for (const char *name : {"LIB", "BTREE", "SAD", "WP"}) {
        const auto wl = workloads::make(name, 0.1);
        Launch moved = wl.launch;
        reorderForBypass(moved.kernel, 3);

        const auto a = runFunctional(wl.launch, 4'000'000, false);
        const auto b = runFunctional(moved, 4'000'000, false);
        ASSERT_EQ(a.finalRegs.size(), b.finalRegs.size());
        for (std::size_t w = 0; w < a.finalRegs.size(); ++w) {
            for (unsigned r = 0; r < 256; ++r) {
                ASSERT_EQ(a.finalRegs[w][r], b.finalRegs[w][r])
                    << name << " warp " << w << " reg " << r;
            }
        }
        EXPECT_TRUE(a.finalMem.contentsEqual(b.finalMem)) << name;
    }
}

TEST(Reorder, NeverReducesStaticReuse)
{
    for (const char *name : {"NW", "MUM", "VECTORADD"}) {
        const auto wl = workloads::make(name, 0.1);
        const double before = readFractionAt3(wl.launch);
        Launch moved = wl.launch;
        reorderForBypass(moved.kernel, 3);
        const double after = readFractionAt3(moved);
        EXPECT_GE(after + 0.02, before) << name;
    }
}

TEST(Reorder, KeepsTerminatorLast)
{
    const auto wl = workloads::make("GAUSSIAN", 0.1);
    Launch moved = wl.launch;
    reorderForBypass(moved.kernel, 3);
    // The kernel re-finalized without error, and the last
    // instruction of every block with a branch terminator is still a
    // branch (finalize would reject dangling branch targets).
    EXPECT_TRUE(moved.kernel.finalized());
    EXPECT_TRUE(moved.kernel.inst(
        static_cast<InstIdx>(moved.kernel.size() - 1)).endsWarp());
}

TEST(Reorder, MemoryOrderPreserved)
{
    // A store and a later load to the same address must not swap.
    const char *src =
        "mov $r1, 0x100;\n"
        "mov $r2, 42;\n"
        "st.global [$r1], $r2;\n"
        "mov $r5, 1;\n"
        "mov $r6, 2;\n"
        "ld.global $r3, [$r1];\n"
        "exit;";
    Launch launch;
    launch.kernel = assemble(src, "memorder");
    launch.numWarps = 1;
    Launch moved = launch;
    reorderForBypass(moved.kernel, 3);
    InstIdx stPos = kNoInst;
    InstIdx ldPos = kNoInst;
    for (InstIdx i = 0; i < moved.kernel.size(); ++i) {
        if (moved.kernel.inst(i).op == Opcode::ST_GLOBAL)
            stPos = i;
        if (moved.kernel.inst(i).op == Opcode::LD_GLOBAL)
            ldPos = i;
    }
    ASSERT_NE(stPos, kNoInst);
    ASSERT_NE(ldPos, kNoInst);
    EXPECT_LT(stPos, ldPos);
    const auto fn = runFunctional(moved);
    EXPECT_EQ(fn.finalRegs[0][3], 42u);
}

TEST(Reorder, StatsCountVisitedBlocks)
{
    const auto wl = workloads::make("BFS", 0.1);
    Launch moved = wl.launch;
    const auto stats = reorderForBypass(moved.kernel, 3);
    EXPECT_GT(stats.blocksVisited, 1u);
    EXPECT_LE(stats.blocksChanged, stats.blocksVisited);
}

} // namespace
} // namespace bow
