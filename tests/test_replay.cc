/**
 * @file
 * Write-back replay tests — the paper's Table I experiment: RF write
 * counts for the Fig. 6 BTREE listing under the three policies.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "compiler/writeback_tagger.h"
#include "core/replay.h"
#include "sm/functional.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

class ReplayFig6 : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        launch = snippets::btreeSnippet();
        trace = runFunctional(launch).traces[0];
    }

    Launch launch;
    WarpTrace trace;
};

TEST_F(ReplayFig6, WriteThroughCountsEveryWrite)
{
    const auto r = replayWritebacks(launch.kernel, trace,
                                    Architecture::BOW, 3);
    // Static writes in the listing: r0 x3, r1 x4, r2 x3, r3 x1,
    // r4 x1, p0 x1. (The paper's Table I quotes r2 = 2 because its
    // variant of the listing has one fewer r2 write; see
    // EXPERIMENTS.md.)
    EXPECT_EQ(r.writesTo(0), 3u);
    EXPECT_EQ(r.writesTo(1), 4u);
    EXPECT_EQ(r.writesTo(2), 3u);
    EXPECT_EQ(r.writesTo(3), 1u);
    EXPECT_EQ(r.totalRfWrites, 13u);
    EXPECT_EQ(r.totalBocWrites, 13u);
}

TEST_F(ReplayFig6, BaselineMatchesWriteThrough)
{
    const auto bow = replayWritebacks(launch.kernel, trace,
                                      Architecture::BOW, 3);
    const auto base = replayWritebacks(launch.kernel, trace,
                                       Architecture::Baseline, 3);
    EXPECT_EQ(bow.totalRfWrites, base.totalRfWrites);
    EXPECT_EQ(base.totalBocWrites, 0u);
}

TEST_F(ReplayFig6, WriteBackConsolidates)
{
    const auto r = replayWritebacks(launch.kernel, trace,
                                    Architecture::BOW_WR, 3);
    // Consolidation collapses the r0 chain (3 writes -> 1) and the
    // r1 chain (4 -> 2, because the line-9 value is refetched by the
    // distant set.ne).
    EXPECT_EQ(r.writesTo(0), 1u);
    EXPECT_EQ(r.writesTo(1), 2u);
    EXPECT_EQ(r.writesTo(3), 1u);
    EXPECT_LT(r.totalRfWrites, 13u);
}

TEST_F(ReplayFig6, CompilerHintsMatchPaperTable)
{
    Launch tagged = launch;
    tagWritebacks(tagged.kernel, 3);
    const auto r = replayWritebacks(tagged.kernel, trace,
                                    Architecture::BOW_WR_OPT, 3);
    // Paper Table I, "BOW-WR (compiler Opt.)": r0=0, r1=1, r2=0,
    // r3=1.
    EXPECT_EQ(r.writesTo(0), 0u);
    EXPECT_EQ(r.writesTo(1), 1u);
    EXPECT_EQ(r.writesTo(2), 0u);
    EXPECT_EQ(r.writesTo(3), 1u);
}

TEST_F(ReplayFig6, PolicyOrderingHolds)
{
    Launch tagged = launch;
    tagWritebacks(tagged.kernel, 3);
    const auto wt = replayWritebacks(launch.kernel, trace,
                                     Architecture::BOW, 3);
    const auto wb = replayWritebacks(launch.kernel, trace,
                                     Architecture::BOW_WR, 3);
    const auto opt = replayWritebacks(tagged.kernel, trace,
                                      Architecture::BOW_WR_OPT, 3);
    EXPECT_LT(wb.totalRfWrites, wt.totalRfWrites);
    EXPECT_LT(opt.totalRfWrites, wb.totalRfWrites);
}

TEST(Replay, UnsupportedArchIsFatal)
{
    const Launch launch = snippets::btreeSnippet();
    const auto trace = runFunctional(launch).traces[0];
    EXPECT_THROW(replayWritebacks(launch.kernel, trace,
                                  Architecture::RFC, 3),
                 FatalError);
}

TEST(Replay, WiderWindowNeverIncreasesWrites)
{
    const Launch launch = snippets::chainLoop(1, 12);
    const auto trace = runFunctional(launch).traces[0];
    std::uint64_t prev = ~0ull;
    for (unsigned iw = 2; iw <= 6; ++iw) {
        const auto r = replayWritebacks(launch.kernel, trace,
                                        Architecture::BOW_WR, iw);
        EXPECT_LE(r.totalRfWrites, prev) << "iw=" << iw;
        prev = r.totalRfWrites;
    }
}

} // namespace
} // namespace bow
