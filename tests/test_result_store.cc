/**
 * @file
 * The persistent result store (docs/SERVICE.md): codec bit-exactness,
 * crash-safety of the on-disk entries, version-keyed invalidation and
 * the ResultCache tier integration.
 *
 * Four families of guarantees:
 *
 *  - Codec: simResultToJson/FromJson reproduce every counter,
 *    register, memory word and metric bit-for-bit (the JSON dump of
 *    the decode equals the dump of the encode — the codec is its own
 *    equality witness), NaN and large uint64 values included;
 *    simConfigToJson round-trips every field; simSchemaHash() is
 *    stable within a build and nonzero.
 *
 *  - Disk: a published entry is served back across store instances;
 *    torn/truncated/garbage entries are tolerated (miss + delete,
 *    recompute rewrites a clean entry); entries from a different
 *    store format, schema hash or binary version are evicted, never
 *    served; concurrent same-key writers converge via tmp+rename.
 *
 *  - Tier: a fresh ResultCache::insert writes through to the store;
 *    a memory miss is served from the store, counted in storeHits()
 *    and memoized (the second lookup is a memory hit).
 *
 *  - Globals: attachGlobalResultStore is idempotent per directory
 *    and detachGlobalResultStore() restores the untiered cache.
 *
 * Every suite name starts with "ResultStore" so the CI sanitizer
 * jobs (.github/workflows/ci.yml) can select the lot with one regex.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/log.h"
#include "core/result_cache.h"
#include "core/simulator.h"
#include "service/result_store.h"
#include "service/sim_codec.h"
#include "workloads/registry.h"

namespace bow {
namespace {

constexpr double kScale = 0.05; // pinned like the golden gate

/** A fresh, empty store directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

SimResult
simulate(const std::string &workload, Architecture arch)
{
    SimConfig config = SimConfig::titanXPascal();
    config.arch = arch;
    const Workload wl = workloads::make(workload, kScale);
    return Simulator(config).run(wl.launch);
}

/** The codec as its own equality witness: two results are
 *  bit-identical iff their (exhaustive, shortest-round-trip) JSON
 *  encodes are character-identical. */
std::string
fingerprint(const SimResult &result)
{
    return simResultToJson(result).dump();
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

TEST(ResultStoreCodec, ResultRoundTripIsBitExact)
{
    // BOW_WR_OPT populates every section: tags, BOC metrics,
    // consolidation counters, per-warp registers and final memory.
    const SimResult original = simulate("VECTORADD",
                                        Architecture::BOW_WR_OPT);
    const SimResult decoded =
        simResultFromJson(simResultToJson(original));

    EXPECT_EQ(decoded.arch, original.arch);
    EXPECT_EQ(decoded.windowSize, original.windowSize);
    EXPECT_EQ(decoded.stats.cycles, original.stats.cycles);
    EXPECT_EQ(decoded.stats.instructions,
              original.stats.instructions);
    EXPECT_EQ(decoded.stats.rfReads, original.stats.rfReads);
    EXPECT_EQ(decoded.stats.bocForwards, original.stats.bocForwards);
    EXPECT_EQ(decoded.energy.totalPj, original.energy.totalPj);
    EXPECT_EQ(fingerprint(decoded), fingerprint(original));
}

TEST(ResultStoreCodec, EveryMetricSurvives)
{
    const SimResult original = simulate("SAD", Architecture::BOW_WR);
    const SimResult decoded =
        simResultFromJson(simResultToJson(original));
    EXPECT_EQ(decoded.metrics.toJson().dump(),
              original.metrics.toJson().dump());
}

TEST(ResultStoreCodec, NanAndLargeValuesRoundTrip)
{
    SimResult r = simulate("VECTORADD", Architecture::Baseline);
    r.energy.totalPj = std::nan("");
    r.stats.cycles = (std::uint64_t{1} << 62) + 12345;

    const SimResult decoded = simResultFromJson(simResultToJson(r));
    EXPECT_TRUE(std::isnan(decoded.energy.totalPj));
    EXPECT_EQ(decoded.stats.cycles,
              (std::uint64_t{1} << 62) + 12345);
}

TEST(ResultStoreCodec, ConfigRoundTripPreservesCacheKey)
{
    SimConfig config = SimConfig::titanXPascal();
    config.arch = Architecture::BOW_WR;
    config.windowSize = 5;
    config.numSms = 4;
    config.schedPolicy = SchedPolicy::LRR;
    config.extendedWindow = true;

    const SimConfig decoded =
        simConfigFromJson(simConfigToJson(config));
    EXPECT_EQ(simConfigToJson(decoded).dump(),
              simConfigToJson(config).dump());

    // The cache key sees every simulation-relevant field, so key
    // equality across the round trip is the semantic check.
    const Workload wl = workloads::make("VECTORADD", kScale);
    EXPECT_EQ(simCacheKey(wl, decoded), simCacheKey(wl, config));
}

TEST(ResultStoreCodec, RejectsMissingAndMistypedMembers)
{
    const SimResult r = simulate("VECTORADD", Architecture::Baseline);
    JsonValue json = simResultToJson(r);
    json.set("window_size", "three"); // wrong kind
    EXPECT_THROW(simResultFromJson(json), FatalError);
    EXPECT_THROW(simResultFromJson(JsonValue::object()), FatalError);
    EXPECT_THROW(simConfigFromJson(JsonValue::object()), FatalError);
}

TEST(ResultStoreCodec, SchemaHashIsStableAndNonzero)
{
    EXPECT_NE(simSchemaHash(), 0u);
    EXPECT_EQ(simSchemaHash(), simSchemaHash());
}

// ---------------------------------------------------------------------
// Disk
// ---------------------------------------------------------------------

TEST(ResultStoreDisk, PublishThenLoadAcrossInstances)
{
    const std::string dir = freshDir("store_basic");
    const SimResult r = simulate("VECTORADD",
                                 Architecture::BOW_WR_OPT);
    const std::uint64_t key = 0x1234abcdu;

    {
        ResultStore store(dir);
        EXPECT_EQ(store.load(key), nullptr); // cold
        EXPECT_EQ(store.misses(), 1u);
        store.publish(key, r);
        EXPECT_EQ(store.stores(), 1u);
        EXPECT_TRUE(std::filesystem::exists(store.entryPath(key)));
    }

    ResultStore reopened(dir); // a new process, in effect
    const auto loaded = reopened.load(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(reopened.hits(), 1u);
    EXPECT_EQ(fingerprint(*loaded), fingerprint(r));
}

TEST(ResultStoreDisk, TornEntryIsToleratedAndRecomputed)
{
    const std::string dir = freshDir("store_torn");
    ResultStore store(dir);
    const SimResult r = simulate("VECTORADD", Architecture::Baseline);
    const std::uint64_t key = 7;
    store.publish(key, r);

    // Truncate the entry mid-file: a crash between write and rename
    // cannot produce this (rename is atomic), but a full disk or a
    // meddling operator can — the store must shrug, not serve junk.
    const std::string path = store.entryPath(key);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        std::getline(in, text, '\0');
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }

    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.torn(), 1u);
    EXPECT_FALSE(std::filesystem::exists(path)) <<
        "torn entry must be deleted so it is recomputed exactly once";

    // Garbage that parses as JSON but is not an entry: same story.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "{\"store\":42}";
    }
    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.torn(), 2u);

    // The recompute path: publish rewrites a clean entry.
    store.publish(key, r);
    const auto reloaded = store.load(key);
    ASSERT_NE(reloaded, nullptr);
    EXPECT_EQ(fingerprint(*reloaded), fingerprint(r));
}

TEST(ResultStoreDisk, VersionMismatchEvictsInsteadOfServing)
{
    const std::string dir = freshDir("store_version");
    const SimResult r = simulate("VECTORADD", Architecture::Baseline);
    const std::uint64_t key = 9;

    StoreVersion v1 = StoreVersion::current();
    {
        ResultStore store(dir, v1);
        store.publish(key, r);
    }

    // A different binary (the CI gate flips this with
    // BOWSIM_STORE_VERSION_SALT) must invalidate, never serve stale.
    StoreVersion v2 = v1;
    v2.binaryVersion += "+other-build";
    {
        ResultStore store(dir, v2);
        EXPECT_EQ(store.load(key), nullptr);
        EXPECT_EQ(store.invalidated(), 1u);
        EXPECT_FALSE(std::filesystem::exists(store.entryPath(key)));
        // Second look is a plain miss — the eviction already
        // happened, nothing is double-counted.
        EXPECT_EQ(store.load(key), nullptr);
        EXPECT_EQ(store.invalidated(), 1u);
    }

    // Same for a codec-shape change.
    {
        ResultStore writer(dir, v1);
        writer.publish(key, r);
    }
    StoreVersion v3 = v1;
    v3.schemaHash ^= 0x1;
    ResultStore store(dir, v3);
    EXPECT_EQ(store.load(key), nullptr);
    EXPECT_EQ(store.invalidated(), 1u);
}

TEST(ResultStoreDisk, KeyMismatchIsNeverServed)
{
    const std::string dir = freshDir("store_keymix");
    ResultStore store(dir);
    const SimResult r = simulate("VECTORADD", Architecture::Baseline);
    store.publish(11, r);

    // Rename the entry under a different key, as a corrupted or
    // hand-copied store might: the embedded key wins.
    std::filesystem::rename(store.entryPath(11),
                            store.entryPath(12));
    EXPECT_EQ(store.load(12), nullptr);
    EXPECT_EQ(store.torn(), 1u);
}

TEST(ResultStoreDisk, ConcurrentSameKeyWritersConverge)
{
    const std::string dir = freshDir("store_race");
    ResultStore store(dir);
    const SimResult r = simulate("SAD", Architecture::BOW_WR);
    const std::uint64_t key = 42;

    // Equal keys hold bit-identical results, so whichever rename
    // lands last must be indistinguishable from the first. Mixed-in
    // readers exercise load-vs-rename (TSan covers the counters).
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&store, &r, key, t] {
            for (int i = 0; i < 4; ++i) {
                if ((t + i) % 2 == 0)
                    store.publish(key, r);
                else
                    store.load(key);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    const auto loaded = store.load(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(fingerprint(*loaded), fingerprint(r));
    // No tmp droppings left behind.
    std::size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

// ---------------------------------------------------------------------
// Tier integration
// ---------------------------------------------------------------------

TEST(ResultStoreTier, InsertWritesThroughAndMissReadsBack)
{
    const std::string dir = freshDir("store_tier");
    ResultStore store(dir);
    const std::uint64_t key = 77;
    auto result = std::make_shared<const SimResult>(
        simulate("VECTORADD", Architecture::BOW_WR));

    ResultCache cache;
    EXPECT_FALSE(cache.hasTier());
    cache.attachTier(&store);
    EXPECT_TRUE(cache.hasTier());

    // A fresh insert is written through...
    cache.insert(key, result);
    EXPECT_EQ(store.stores(), 1u);
    EXPECT_TRUE(std::filesystem::exists(store.entryPath(key)));

    // ...and a different cache (a different process, in effect)
    // fills its memory miss from the store.
    ResultCache other;
    other.attachTier(&store);
    const auto first = other.lookup(key);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(other.storeHits(), 1u);
    EXPECT_EQ(fingerprint(*first), fingerprint(*result));

    // The tier hit was memoized: the next lookup is a memory hit and
    // the store is not consulted again.
    const std::uint64_t storeHits = store.hits();
    const auto second = other.lookup(key);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(other.hits(), 1u);
    EXPECT_EQ(store.hits(), storeHits);

    // Tier-served results are never re-published to the store.
    EXPECT_EQ(store.stores(), 1u);
}

TEST(ResultStoreTier, TierMissFallsBackToCompute)
{
    const std::string dir = freshDir("store_tier_miss");
    ResultStore store(dir);
    ResultCache cache;
    cache.attachTier(&store);
    EXPECT_EQ(cache.lookup(123), nullptr);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.storeHits(), 0u);
}

// ---------------------------------------------------------------------
// Global attachment
// ---------------------------------------------------------------------

TEST(ResultStoreGlobal, AttachIsIdempotentAndDetachRestores)
{
    const std::string dir = freshDir("store_global");
    ASSERT_EQ(globalResultStore(), nullptr)
        << "another test leaked a global store attachment";

    ResultStore *store = attachGlobalResultStore(dir);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(attachGlobalResultStore(dir), store);
    EXPECT_EQ(globalResultStore(), store);
    EXPECT_TRUE(globalResultCache().hasTier());

    detachGlobalResultStore();
    EXPECT_EQ(globalResultStore(), nullptr);
    EXPECT_FALSE(globalResultCache().hasTier());
    globalResultCache().reset();
}

} // namespace
} // namespace bow
