/**
 * @file
 * Dynamic reuse-analysis tests (the Fig. 3 characterisation): sliding
 * extended-window read bypassing and oracle write elimination.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "compiler/reuse.h"
#include "isa/assembler.h"
#include "sm/functional.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

/** Straight-line trace over all instructions of @p k (all writes
 *  performed). */
WarpTrace
linearTrace(const Kernel &k)
{
    WarpTrace t;
    for (InstIdx i = 0; i < k.size(); ++i)
        t.insts.push_back({i, k.inst(i).hasDest()});
    return t;
}

TEST(Reuse, RejectsTinyWindow)
{
    Kernel k = assemble("nop; exit;");
    EXPECT_THROW(analyzeReuse(k, {}, 1), FatalError);
}

TEST(Reuse, ImmediateReuseIsBypassed)
{
    Kernel k = assemble(
        "mov $r1, 1;\n"     // write r1
        "add $r2, $r1, $r1;\n" // read r1 one instruction later
        "exit;");
    const auto s = analyzeReuse(k, {linearTrace(k)}, 2);
    EXPECT_EQ(s.totalReads, 1u);
    EXPECT_EQ(s.bypassedReads, 1u);
}

TEST(Reuse, ReadAtWindowBoundaryMisses)
{
    // Distance from write to read is exactly the window size.
    Kernel k = assemble(
        "mov $r1, 1;\n"     // 0
        "mov $r2, 2;\n"     // 1
        "add $r3, $r1, $r2;\n" // 2: r1 at distance 2, r2 at 1
        "exit;");
    const auto s2 = analyzeReuse(k, {linearTrace(k)}, 2);
    EXPECT_EQ(s2.totalReads, 2u);
    EXPECT_EQ(s2.bypassedReads, 1u); // only r2
    const auto s3 = analyzeReuse(k, {linearTrace(k)}, 3);
    EXPECT_EQ(s3.bypassedReads, 2u); // both within IW=3
}

TEST(Reuse, SlidingWindowExtendsResidency)
{
    // r1 accessed every 1 instruction: with IW=2 every later read
    // still hits (the window slides with each access).
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "add $r2, $r1, $r1;\n"
        "add $r3, $r1, $r2;\n"
        "add $r4, $r1, $r3;\n"
        "exit;");
    const auto s = analyzeReuse(k, {linearTrace(k)}, 2);
    // Reads: (r1), (r1, r2), (r1, r3) -> five unique-per-inst reads.
    EXPECT_EQ(s.totalReads, 5u);
    EXPECT_EQ(s.bypassedReads, 5u);
}

TEST(Reuse, ConsolidatedWriteIsBypassed)
{
    // r1 written twice in a row: the first write never needs the RF.
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "mov $r1, 2;\n"
        "st.global [$r2], $r1;\n"
        "exit;");
    const auto s = analyzeReuse(k, {linearTrace(k)}, 3);
    EXPECT_EQ(s.totalWrites, 2u);
    // First write consolidated; second is dead at warp end (consumed
    // only by the in-window store read) -> also bypassable.
    EXPECT_EQ(s.bypassedWrites, 2u);
}

TEST(Reuse, BrokenChainForcesWriteback)
{
    // r1 written, then read far away: the write must reach the RF.
    Kernel k = assemble(
        "mov $r1, 1;\n"     // 0: write r1
        "mov $r2, 2;\n"     // 1
        "mov $r3, 3;\n"     // 2
        "mov $r4, 4;\n"     // 3
        "add $r5, $r1, $r2;\n" // 4: r1 at distance 4
        "exit;");
    const auto s = analyzeReuse(k, {linearTrace(k)}, 3);
    // r1's write is not bypassable.
    EXPECT_EQ(s.totalWrites, 5u);
    // r2..r5 writes are dead / superseded-free: r2 read in window at
    // 4 (distance 3 -> out of IW=3!). Check precisely: r2 written at
    // 1, read at 4, gap 3 >= 3 -> broken too. r3, r4, r5 dead.
    EXPECT_EQ(s.bypassedWrites, 3u);
}

TEST(Reuse, GuardSuppressedWriteNotCounted)
{
    Kernel k = assemble(
        "@$p0 mov $r1, 1;\n"
        "exit;");
    WarpTrace t;
    t.insts.push_back({0, false}); // guard failed: no write
    t.insts.push_back({1, false});
    const auto s = analyzeReuse(k, {t}, 3);
    EXPECT_EQ(s.totalWrites, 0u);
    // The guard predicate itself is read.
    EXPECT_EQ(s.totalReads, 1u);
}

TEST(Reuse, MonotoneInWindowSize)
{
    const Launch launch = snippets::chainLoop(2, 12);
    const auto fn = runFunctional(launch);
    double prevRead = -1.0;
    double prevWrite = -1.0;
    for (unsigned iw = 2; iw <= 7; ++iw) {
        const auto s = analyzeReuse(launch.kernel, fn.traces, iw);
        EXPECT_GE(s.readFraction() + 1e-12, prevRead) << "iw=" << iw;
        EXPECT_GE(s.writeFraction() + 1e-12, prevWrite) << "iw=" << iw;
        prevRead = s.readFraction();
        prevWrite = s.writeFraction();
    }
}

TEST(Reuse, FractionsWithinUnitInterval)
{
    const Launch launch = snippets::tinyVadd(4, 8);
    const auto fn = runFunctional(launch);
    const auto s = analyzeReuse(launch.kernel, fn.traces, 3);
    EXPECT_GT(s.totalReads, 0u);
    EXPECT_GT(s.totalWrites, 0u);
    EXPECT_LE(s.bypassedReads, s.totalReads);
    EXPECT_LE(s.bypassedWrites, s.totalWrites);
}

TEST(Reuse, StatsAccumulateAcrossWarps)
{
    const Launch launch = snippets::tinyVadd(3, 4);
    const auto fn = runFunctional(launch);
    ReuseStats sum;
    for (const auto &t : fn.traces)
        sum += analyzeReuse(launch.kernel, {t}, 3);
    const auto all = analyzeReuse(launch.kernel, fn.traces, 3);
    EXPECT_EQ(sum.totalReads, all.totalReads);
    EXPECT_EQ(sum.bypassedReads, all.bypassedReads);
    EXPECT_EQ(sum.totalWrites, all.totalWrites);
    EXPECT_EQ(sum.bypassedWrites, all.bypassedWrites);
}

TEST(Reuse, SourceOperandHistogram)
{
    Kernel k = assemble(
        "mov $r1, 7;\n"             // 0 register sources
        "neg $r2, $r1;\n"           // 1
        "add $r3, $r1, $r2;\n"      // 2
        "mad $r4, $r1, $r2, $r3;\n" // 3
        "exit;");                   // 0
    const auto h = sourceOperandHistogram(k, {linearTrace(k)});
    ASSERT_EQ(h.size(), 4u);
    EXPECT_EQ(h[0], 2u);
    EXPECT_EQ(h[1], 1u);
    EXPECT_EQ(h[2], 1u);
    EXPECT_EQ(h[3], 1u);
}

} // namespace
} // namespace bow
