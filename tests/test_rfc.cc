/**
 * @file
 * Register-file-cache baseline tests: write-allocate, read probes,
 * FIFO replacement and dirty flushes.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "sm/rfc.h"

namespace bow {
namespace {

TEST(Rfc, ZeroEntriesIsFatal)
{
    EXPECT_THROW(Rfc(0), FatalError);
}

TEST(Rfc, ReadMissesUntilWritten)
{
    Rfc rfc(4);
    EXPECT_FALSE(rfc.readHit(3));
    rfc.write(3);
    EXPECT_TRUE(rfc.readHit(3));
}

TEST(Rfc, ReadsDoNotAllocate)
{
    Rfc rfc(2);
    EXPECT_FALSE(rfc.readHit(1));
    EXPECT_FALSE(rfc.readHit(1)); // still a miss
}

TEST(Rfc, RepeatedWriteKeepsSingleEntry)
{
    Rfc rfc(2);
    rfc.write(1);
    rfc.write(1);
    rfc.write(2);
    // No eviction yet: r1 was updated in place.
    auto res = rfc.write(3);
    EXPECT_TRUE(res.evictedDirty);
    EXPECT_EQ(res.evictedReg, 1);
}

TEST(Rfc, FifoEviction)
{
    Rfc rfc(2);
    rfc.write(1);
    rfc.write(2);
    auto res = rfc.write(3);
    EXPECT_TRUE(res.evictedDirty);
    EXPECT_EQ(res.evictedReg, 1);
    EXPECT_FALSE(rfc.readHit(1));
    EXPECT_TRUE(rfc.readHit(2));
    EXPECT_TRUE(rfc.readHit(3));
}

TEST(Rfc, FlushReturnsDirtyRegsAndEmpties)
{
    Rfc rfc(4);
    rfc.write(1);
    rfc.write(2);
    auto dirty = rfc.flushDirty();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_FALSE(rfc.readHit(1));
    EXPECT_TRUE(rfc.flushDirty().empty());
}

} // namespace
} // namespace bow
