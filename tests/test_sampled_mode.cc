/**
 * @file
 * SMARTS-style sampled simulation (core/sampled.h). Four families of
 * guarantees:
 *
 *  - Accuracy: on the golden-gate workload suite (the nine
 *    workload × architecture cases metrics_regress pins), the
 *    sampled IPC estimate lands within a fixed relative error bound
 *    of the exact detailed run, and the estimated cycle count is the
 *    documented extrapolation (instructions / detailed-window IPC).
 *    Functional correctness is not sampled away: final registers and
 *    memory match the exact run bit-for-bit.
 *
 *  - Honesty: every sampled result is branded (SimResult::estimate,
 *    the sampled.estimate counter, metricsAreEstimate()), exact runs
 *    are not, and a sampled run actually sampled (windows >= 1, and
 *    on long runs the functional-warming gap really fired).
 *
 *  - Isolation: the persistent result store refuses to publish an
 *    estimate — a sampled run can never poison the exact-result
 *    cache tier that the golden gate and sweeps read.
 *
 *  - Spec hygiene: nonsensical window/period combinations are
 *    refused with clear FatalErrors; sampling is deterministic (two
 *    identical sampled runs are byte-identical).
 *
 * Every suite name starts with "Sampled" (CI regex convenience).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "common/log.h"
#include "core/sampled.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "service/result_store.h"
#include "service/sim_codec.h"
#include "workloads/registry.h"

namespace bow {
namespace {

/**
 * Accuracy-suite scale. Larger than the golden gate's 0.05: sampling
 * needs runs long enough that a detailed window averages over steady
 * state rather than the startup transient (the first few hundred
 * cycles issue at near-peak rate before memory saturates, and
 * functional warming does not model latency state, so windows that
 * only see warm-up extrapolate a wildly inflated IPC).
 */
constexpr double kScale = 0.2;

/** The golden gate's case table (bench/metrics_regress.cc). */
const struct
{
    const char *workload;
    Architecture arch;
} kCases[] = {
    {"VECTORADD", Architecture::Baseline},
    {"VECTORADD", Architecture::BOW_WR},
    {"VECTORADD", Architecture::BOW_WR_OPT},
    {"BFS", Architecture::Baseline},
    {"BFS", Architecture::BOW_WR},
    {"BFS", Architecture::RFC},
    {"BTREE", Architecture::Baseline},
    {"BTREE", Architecture::BOW_WR},
    {"BTREE", Architecture::BOW_WR_OPT},
};

/** Sampling parameters for the accuracy suite: windows long enough
 *  to reach past the warm-up transient on the kScale runs. */
SampleSpec
gateSpec()
{
    SampleSpec spec;
    spec.window = 2'000;
    spec.period = 10'000;
    return spec;
}

/** Detailed-window sampling must track the exact IPC within this
 *  relative bound on the gate suite (docs/PERFORMANCE.md records the
 *  measured errors, 0.02-0.20 across the cases; the bound has
 *  headroom over them). */
constexpr double kIpcErrorBound = 0.25;

// ---------------------------------------------------------------------
// Accuracy.
// ---------------------------------------------------------------------

TEST(SampledAccuracy, IpcWithinBoundOnGoldenSuite)
{
    for (const auto &c : kCases) {
        SCOPED_TRACE(strf(c.workload, "/", archName(c.arch)));
        const Workload wl = workloads::make(c.workload, kScale);
        const SimConfig config = configFor(c.arch);

        const SimResult exact = Simulator(config).run(wl.launch);
        SampledInfo info;
        const SimResult est =
            runSampled(config, wl.launch, gateSpec(), nullptr, &info);

        EXPECT_TRUE(est.estimate);
        EXPECT_GE(info.windows, 1u);
        const double reported = ipcRelError(est, exact);
        EXPECT_LE(reported, kIpcErrorBound)
            << "sampled IPC " << est.stats.ipc() << " vs exact "
            << exact.stats.ipc();
        // The reported error is exactly the textbook recomputation —
        // no smoothing hides a drifting estimator.
        EXPECT_DOUBLE_EQ(reported,
                         std::fabs(est.stats.ipc() -
                                   exact.stats.ipc()) /
                             exact.stats.ipc());

        // The estimate is the documented extrapolation, and the
        // instruction count is NOT estimated — every instruction
        // executed (detailed or functional warming).
        EXPECT_EQ(est.stats.instructions, exact.stats.instructions);
        if (info.ipcDetailed > 0.0) {
            const auto expected =
                static_cast<std::uint64_t>(std::llround(
                    static_cast<double>(est.stats.instructions) /
                    info.ipcDetailed));
            EXPECT_EQ(est.stats.cycles, expected);
            EXPECT_EQ(est.stats.cycles, info.estimatedCycles);
        }

        // Sampling skips timing, never semantics.
        ASSERT_EQ(est.finalRegs.size(), exact.finalRegs.size());
        for (std::size_t w = 0; w < est.finalRegs.size(); ++w)
            EXPECT_EQ(est.finalRegs[w], exact.finalRegs[w])
                << "warp " << w;
        EXPECT_TRUE(est.finalMem.contentsEqual(exact.finalMem));
    }
}

TEST(SampledAccuracy, FunctionalWarmingActuallyFires)
{
    // A longer BTREE run with a tighter period sees several windows
    // and bridges most instructions functionally; if this were zero
    // the accuracy suite above would be comparing two detailed runs.
    const Workload wl = workloads::make("BTREE", 0.5);
    SampleSpec spec;
    spec.window = 1'000;
    spec.period = 5'000;
    SampledInfo info;
    runSampled(configFor(Architecture::BOW_WR), wl.launch, spec,
               nullptr, &info);
    EXPECT_GT(info.windows, 1u);
    EXPECT_GT(info.functionalInstructions,
              info.detailedInstructions)
        << "the functional-warming gaps should carry the bulk of "
           "the instructions";
    EXPECT_GT(info.detailedInstructions, 0u);
}

TEST(SampledAccuracy, DeterministicAcrossRuns)
{
    const Workload wl = workloads::make("BFS", kScale);
    const SimConfig config = configFor(Architecture::BOW_WR);
    const SimResult a =
        runSampled(config, wl.launch, gateSpec());
    const SimResult b =
        runSampled(config, wl.launch, gateSpec());
    EXPECT_EQ(simResultToJson(a).dump(), simResultToJson(b).dump());
}

// ---------------------------------------------------------------------
// Honesty: estimates are branded, exact runs are not.
// ---------------------------------------------------------------------

TEST(SampledHonesty, EstimatesAreBranded)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    const SimConfig config = configFor(Architecture::BOW_WR);

    const SimResult est =
        runSampled(config, wl.launch, gateSpec());
    EXPECT_TRUE(est.estimate);
    EXPECT_TRUE(metricsAreEstimate(est.metrics));
    EXPECT_EQ(est.metrics.counter("sampled.estimate"), 1u);
    EXPECT_GE(est.metrics.counter("sampled.windows"), 1u);

    const SimResult exact = Simulator(config).run(wl.launch);
    EXPECT_FALSE(exact.estimate);
    EXPECT_FALSE(metricsAreEstimate(exact.metrics));
}

TEST(SampledHonesty, EstimateFlagSurvivesTheResultCodec)
{
    // The store/daemon codec must carry the brand: a decoded
    // estimate is still an estimate.
    const Workload wl = workloads::make("VECTORADD", kScale);
    const SimResult est = runSampled(
        configFor(Architecture::Baseline), wl.launch, gateSpec());
    const SimResult decoded = simResultFromJson(simResultToJson(est));
    EXPECT_TRUE(decoded.estimate);
    EXPECT_TRUE(metricsAreEstimate(decoded.metrics));
}

// ---------------------------------------------------------------------
// Isolation: the persistent store refuses estimates.
// ---------------------------------------------------------------------

TEST(SampledIsolation, ResultStoreRefusesEstimates)
{
    const std::string dir = testing::TempDir() + "sampled_store";
    std::filesystem::remove_all(dir);
    ResultStore store(dir);

    const Workload wl = workloads::make("VECTORADD", kScale);
    const SimConfig config = configFor(Architecture::BOW_WR);
    const std::uint64_t key = 0xE57;

    const SimResult est =
        runSampled(config, wl.launch, gateSpec());
    store.publish(key, est);
    EXPECT_EQ(store.stores(), 0u);
    EXPECT_FALSE(std::filesystem::exists(store.entryPath(key)));
    EXPECT_EQ(store.load(key), nullptr);

    // The same key with an exact result stores normally.
    const SimResult exact = Simulator(config).run(wl.launch);
    store.publish(key, exact);
    EXPECT_EQ(store.stores(), 1u);
    ASSERT_NE(store.load(key), nullptr);
}

// ---------------------------------------------------------------------
// Spec hygiene.
// ---------------------------------------------------------------------

TEST(SampledSpec, RejectsDegenerateWindows)
{
    SampleSpec zeroWindow;
    zeroWindow.window = 0;
    zeroWindow.period = 100;
    EXPECT_THROW(zeroWindow.validate(), FatalError);

    SampleSpec windowSwallowsPeriod;
    windowSwallowsPeriod.window = 100;
    windowSwallowsPeriod.period = 100;
    EXPECT_THROW(windowSwallowsPeriod.validate(), FatalError);

    SampleSpec ok;
    ok.window = 100;
    ok.period = 101;
    EXPECT_NO_THROW(ok.validate());
}

TEST(SampledSpec, EnabledOnlyWhenRequested)
{
    SampleSpec off;
    EXPECT_FALSE(off.enabled());
    SampleSpec on;
    on.window = 10;
    EXPECT_TRUE(on.enabled());
}

} // namespace
} // namespace bow
