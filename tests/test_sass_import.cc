/**
 * @file
 * Accel-Sim-style SASS trace importer tests: opcode mapping, operand
 * handling (RZ, predicates, floats), memory instructions, metadata
 * skipping, and end-to-end replay through every architecture.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "isa/sass_import.h"

namespace bow {
namespace {

const char *kSimpleTrace = R"(
# kernel vecadd
-:-:-:-:1 metadata to skip
warp = 0
insts = 6
0008 ffffffff 1 R1 S2R 0
0010 ffffffff 1 R2 IMAD.WIDE 3 R1 R1 0x10
0018 ffffffff 1 R4 LDG.E.SYS 1 R2 4 0x7f0010
0020 ffffffff 1 R5 IADD3 3 R4 R4 RZ
0028 ffffffff 0 STG.E 2 R2 R5 4 0x7f0020
0030 ffffffff 0 EXIT 0 0
warp = 1
0008 ffffffff 1 R1 MOV 1 0x5
0010 ffffffff 0 BRA 0 0
0018 ffffffff 0 EXIT 0 0
)";

TEST(SassImport, ParsesWarpsAndOpcodes)
{
    SassImportStats stats;
    const Launch launch = importSassTrace(kSimpleTrace, "t", &stats);
    EXPECT_EQ(launch.numWarps, 2u);
    EXPECT_EQ(stats.dropped, 1u);   // the BRA
    EXPECT_EQ(stats.unknown, 0u);
    EXPECT_EQ(stats.instructions, 8u);

    const Kernel &w0 = launch.warpKernels[0];
    ASSERT_EQ(w0.size(), 6u);
    EXPECT_EQ(w0.inst(0).op, Opcode::MOV);      // S2R -> %warpid
    EXPECT_EQ(w0.inst(1).op, Opcode::MAD);      // 3-source IMAD
    EXPECT_EQ(w0.inst(2).op, Opcode::LD_GLOBAL);
    EXPECT_EQ(w0.inst(2).srcs[0].reg, 2);       // address register
    EXPECT_EQ(w0.inst(3).op, Opcode::MAD);      // IADD3 keeps arity
    EXPECT_EQ(w0.inst(4).op, Opcode::ST_GLOBAL);
    EXPECT_EQ(w0.inst(4).srcs[0].reg, 2);       // addr = first reg
    EXPECT_EQ(w0.inst(4).srcs[1].reg, 5);       // data = last reg
    EXPECT_EQ(w0.inst(5).op, Opcode::EXIT);

    const Kernel &w1 = launch.warpKernels[1];
    ASSERT_EQ(w1.size(), 2u);   // BRA dropped
    EXPECT_EQ(w1.inst(0).op, Opcode::MOV);
    EXPECT_EQ(w1.inst(0).srcs[0].imm, 5u);
}

TEST(SassImport, RzAndPtMapToImmediates)
{
    const char *trace =
        "warp = 0\n"
        "0008 ffffffff 1 R1 IADD 2 RZ 0x7\n"
        "0010 ffffffff 1 RZ IADD 2 R1 R1\n";
    const Launch launch = importSassTrace(trace);
    const Kernel &k = launch.warpKernels[0];
    EXPECT_EQ(k.inst(0).srcs[0].kind, Operand::Kind::IMM);
    EXPECT_EQ(k.inst(0).srcs[0].imm, 0u);
    // RZ destination lands in the scratch register, not a real GPR
    // named by the trace.
    EXPECT_EQ(k.inst(1).dst, 223);
}

TEST(SassImport, SetpParsesConditionAndPredicateDest)
{
    const char *trace =
        "warp = 0\n"
        "0008 ffffffff 1 P2 ISETP.GE.AND 2 R1 0x0\n";
    const Launch launch = importSassTrace(trace);
    const Kernel &k = launch.warpKernels[0];
    EXPECT_EQ(k.inst(0).op, Opcode::SETP);
    EXPECT_EQ(k.inst(0).cc, CondCode::GE);
    EXPECT_EQ(k.inst(0).dst, predReg(2));
}

TEST(SassImport, MufuModifiersSelectSfuOp)
{
    const char *trace =
        "warp = 0\n"
        "0008 ffffffff 1 R1 MUFU.RCP 1 R2\n"
        "0010 ffffffff 1 R3 MUFU.SIN 1 R1\n"
        "0018 ffffffff 1 R4 MUFU.LG2 1 R3\n"
        "0020 ffffffff 1 R5 MUFU.RSQ 1 R4\n";
    const Launch launch = importSassTrace(trace);
    const Kernel &k = launch.warpKernels[0];
    EXPECT_EQ(k.inst(0).op, Opcode::RCP);
    EXPECT_EQ(k.inst(1).op, Opcode::SIN);
    EXPECT_EQ(k.inst(2).op, Opcode::LG2);
    EXPECT_EQ(k.inst(3).op, Opcode::SQRT);
}

TEST(SassImport, AbsoluteAddressWhenNoAddressRegister)
{
    const char *trace =
        "warp = 0\n"
        "0008 ffffffff 1 R1 LDG.E 1 RZ 4 0x12340\n";
    const Launch launch = importSassTrace(trace);
    const Kernel &k = launch.warpKernels[0];
    EXPECT_EQ(k.inst(0).op, Opcode::LD_GLOBAL);
    EXPECT_EQ(k.inst(0).numRegSrcs(), 0u);
    EXPECT_EQ(k.inst(0).memOffset, 0x12340);
}

TEST(SassImport, FloatImmediatesUseBitPattern)
{
    const char *trace =
        "warp = 0\n"
        "0008 ffffffff 1 R1 FADD 2 R2 0.5\n";
    const Launch launch = importSassTrace(trace);
    const Kernel &k = launch.warpKernels[0];
    EXPECT_EQ(k.inst(0).srcs[1].imm, 0x3F000000u); // bits of 0.5f
}

TEST(SassImport, UnknownOpcodesKeepDataflow)
{
    SassImportStats stats;
    const char *trace =
        "warp = 0\n"
        "0008 ffffffff 1 R1 FROBNICATE.X 2 R2 R3\n";
    const Launch launch = importSassTrace(trace, "u", &stats);
    EXPECT_EQ(stats.unknown, 1u);
    const Kernel &k = launch.warpKernels[0];
    EXPECT_EQ(k.inst(0).op, Opcode::ADD);
    EXPECT_EQ(k.inst(0).dst, 1);
}

TEST(SassImport, ErrorsOnMalformedInput)
{
    EXPECT_THROW(importSassTrace(""), FatalError);
    EXPECT_THROW(importSassTrace("warp = 0\nwarp = 0\n"), FatalError);
    EXPECT_THROW(importSassTrace("warp = 1\n0008 ffffffff 0 EXIT 0 0\n"),
                 FatalError);   // missing warp 0
    EXPECT_THROW(
        importSassTrace("0008 ffffffff 0 EXIT 0 0\n"),
        FatalError);            // instruction before header
    EXPECT_THROW(
        importSassTrace("warp = 0\n0008 ffffffff 9 R1 MOV 1 R2\n"),
        FatalError);            // absurd dest count
    EXPECT_THROW(importSassTraceFile("/does/not/exist"), FatalError);
}

TEST(SassImport, ImportedTraceRunsOnEveryArchitecture)
{
    const Launch launch = importSassTrace(kSimpleTrace);
    for (auto arch : {Architecture::Baseline, Architecture::BOW,
                      Architecture::BOW_WR, Architecture::BOW_WR_OPT,
                      Architecture::RFC}) {
        Simulator sim(configFor(arch, 3));
        EXPECT_NO_THROW(sim.verifyAgainstFunctional(launch))
            << archName(arch);
    }
}

TEST(SassImport, BypassingWorksOnImportedTrace)
{
    // A chain-heavy SASS stream: BOW should forward most operands.
    std::string trace = "warp = 0\n";
    for (int i = 0; i < 32; ++i)
        trace += "0008 ffffffff 1 R1 IADD 2 R1 0x1\n";
    const Launch launch = importSassTrace(trace);
    Simulator sim(configFor(Architecture::BOW_WR, 3));
    const auto res = sim.run(launch);
    EXPECT_GT(res.stats.bocForwards, 20u);
}

} // namespace
} // namespace bow
