/**
 * @file
 * Warp-scheduler policy tests: scheduler/warp partitioning, GTO
 * greediness and oldest-first order, LRR rotation.
 */

#include <gtest/gtest.h>

#include "sm/scheduler.h"

namespace bow {
namespace {

std::vector<Warp>
makeWarps(unsigned n, WarpState state = WarpState::Active)
{
    std::vector<Warp> warps(n);
    for (WarpId w = 0; w < n; ++w) {
        warps[w].id = w;
        warps[w].state = state;
        warps[w].activated = w; // warp id == age order
    }
    return warps;
}

TEST(Scheduler, PartitionsWarpsBySchedulerId)
{
    SimConfig config = SimConfig::titanXPascal();
    WarpSchedulers sched(config);
    auto warps = makeWarps(8);
    for (unsigned sid = 0; sid < config.numSchedulers; ++sid) {
        for (WarpId w : sched.pickOrder(sid, warps))
            EXPECT_EQ(w % config.numSchedulers, sid);
    }
}

TEST(Scheduler, SkipsInactiveWarps)
{
    SimConfig config = SimConfig::titanXPascal();
    WarpSchedulers sched(config);
    auto warps = makeWarps(8);
    warps[0].state = WarpState::Finished;
    warps[4].state = WarpState::Draining;
    const auto order = sched.pickOrder(0, warps);
    EXPECT_TRUE(order.empty());
}

TEST(Scheduler, GtoPrefersOldestByDefault)
{
    SimConfig config = SimConfig::titanXPascal();
    config.schedPolicy = SchedPolicy::GTO;
    WarpSchedulers sched(config);
    auto warps = makeWarps(12);
    warps[4].activated = 100; // make warp 4 the youngest
    const auto order = sched.pickOrder(0, warps);
    // Scheduler 0 owns warps 0, 4, 8; oldest-first: 0, 8, 4.
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 8);
    EXPECT_EQ(order[2], 4);
}

TEST(Scheduler, GtoHoistsGreedyWarp)
{
    SimConfig config = SimConfig::titanXPascal();
    config.schedPolicy = SchedPolicy::GTO;
    WarpSchedulers sched(config);
    auto warps = makeWarps(12);
    sched.noteIssue(0, 8);
    const auto order = sched.pickOrder(0, warps);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 8); // greedy favourite first
    EXPECT_EQ(order[1], 0); // then oldest
    EXPECT_EQ(order[2], 4);
}

TEST(Scheduler, GreedyFavouriteCanFinish)
{
    SimConfig config = SimConfig::titanXPascal();
    WarpSchedulers sched(config);
    auto warps = makeWarps(12);
    sched.noteIssue(0, 8);
    warps[8].state = WarpState::Finished;
    const auto order = sched.pickOrder(0, warps);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0);
}

TEST(Scheduler, LrrRotates)
{
    SimConfig config = SimConfig::titanXPascal();
    config.schedPolicy = SchedPolicy::LRR;
    WarpSchedulers sched(config);
    auto warps = makeWarps(12);
    const auto first = sched.pickOrder(0, warps);
    ASSERT_EQ(first.size(), 3u);
    const WarpId head0 = first[0];
    sched.noteIssue(0, first[0]);
    const auto second = sched.pickOrder(0, warps);
    EXPECT_NE(second[0], head0); // rotor moved on
}

TEST(Scheduler, TwoLevelDemotesMemoryWaiters)
{
    SimConfig config = SimConfig::titanXPascal();
    config.schedPolicy = SchedPolicy::TWO_LEVEL;
    WarpSchedulers sched(config);
    auto warps = makeWarps(12);
    warps[0].pendingLoads = 2;  // oldest warp waits on memory
    const auto order = sched.pickOrder(0, warps);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 4);     // compute-ready, oldest first
    EXPECT_EQ(order[1], 8);
    EXPECT_EQ(order[2], 0);     // demoted behind the active set
}

TEST(Scheduler, TwoLevelFallsBackToAgeOrder)
{
    SimConfig config = SimConfig::titanXPascal();
    config.schedPolicy = SchedPolicy::TWO_LEVEL;
    WarpSchedulers sched(config);
    auto warps = makeWarps(12);
    const auto order = sched.pickOrder(0, warps);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 4);
    EXPECT_EQ(order[2], 8);
}

TEST(Scheduler, SchedulersAreIndependent)
{
    SimConfig config = SimConfig::titanXPascal();
    WarpSchedulers sched(config);
    auto warps = makeWarps(12);
    sched.noteIssue(0, 8);
    // Scheduler 1's order is unaffected by scheduler 0's greediness.
    const auto order = sched.pickOrder(1, warps);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
}

} // namespace
} // namespace bow
