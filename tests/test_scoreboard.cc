/**
 * @file
 * Scoreboard hazard tests: RAW, WAW, WAR detection and release
 * ordering.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/assembler.h"
#include "sm/scoreboard.h"

namespace bow {
namespace {

Instruction
makeAdd(RegId d, RegId a, RegId b)
{
    Instruction i;
    i.op = Opcode::ADD;
    i.dst = d;
    i.addSrc(Operand::makeReg(a));
    i.addSrc(Operand::makeReg(b));
    return i;
}

TEST(Scoreboard, CleanIssue)
{
    Scoreboard sb(2);
    const auto add = makeAdd(1, 2, 3);
    EXPECT_TRUE(sb.canIssue(0, add));
    sb.reserve(0, add);
    EXPECT_FALSE(sb.idle(0));
    EXPECT_TRUE(sb.idle(1));
}

TEST(Scoreboard, RawHazardBlocks)
{
    Scoreboard sb(1);
    const auto producer = makeAdd(1, 2, 3);
    sb.reserve(0, producer);
    // Consumer reads r1 which has a pending write.
    const auto consumer = makeAdd(4, 1, 2);
    EXPECT_FALSE(sb.canIssue(0, consumer));
    sb.releaseReads(0, producer);
    EXPECT_FALSE(sb.canIssue(0, consumer)); // write still pending
    sb.releaseWrite(0, 1);
    EXPECT_TRUE(sb.canIssue(0, consumer));
}

TEST(Scoreboard, WawHazardBlocks)
{
    Scoreboard sb(1);
    sb.reserve(0, makeAdd(1, 2, 3));
    EXPECT_FALSE(sb.canIssue(0, makeAdd(1, 4, 5)));
}

TEST(Scoreboard, WarHazardBlocks)
{
    Scoreboard sb(1);
    const auto reader = makeAdd(1, 2, 3);
    sb.reserve(0, reader);
    // Writer targets r2 which has a pending read.
    const auto writer = makeAdd(2, 4, 5);
    EXPECT_FALSE(sb.canIssue(0, writer));
    sb.releaseReads(0, reader);
    EXPECT_TRUE(sb.canIssue(0, writer));
}

TEST(Scoreboard, IndependentInstructionsCoexist)
{
    Scoreboard sb(1);
    sb.reserve(0, makeAdd(1, 2, 3));
    EXPECT_TRUE(sb.canIssue(0, makeAdd(4, 5, 6)));
}

TEST(Scoreboard, WarpsAreIsolated)
{
    Scoreboard sb(2);
    sb.reserve(0, makeAdd(1, 2, 3));
    EXPECT_TRUE(sb.canIssue(1, makeAdd(1, 2, 3)));
}

TEST(Scoreboard, GuardPredicateIsARead)
{
    Scoreboard sb(1);
    // Pending write to p0 blocks a branch guarded by p0.
    Instruction setp;
    setp.op = Opcode::SETP;
    setp.dst = predReg(0);
    setp.addSrc(Operand::makeReg(1));
    setp.addSrc(Operand::makeReg(2));
    sb.reserve(0, setp);

    Instruction br;
    br.op = Opcode::BRA;
    br.pred = predReg(0);
    EXPECT_FALSE(sb.canIssue(0, br));
    sb.releaseWrite(0, predReg(0));
    EXPECT_TRUE(sb.canIssue(0, br));
}

TEST(Scoreboard, DuplicateSourcesReserveOnce)
{
    Scoreboard sb(1);
    const auto dup = makeAdd(1, 2, 2);
    sb.reserve(0, dup);
    sb.releaseReads(0, dup);
    EXPECT_TRUE(sb.idle(0) == false); // write to r1 still pending
    sb.releaseWrite(0, 1);
    EXPECT_TRUE(sb.idle(0));
}

TEST(Scoreboard, ReleaseWithoutReservationPanics)
{
    Scoreboard sb(1);
    EXPECT_THROW(sb.releaseWrite(0, 1), PanicError);
    EXPECT_THROW(sb.releaseReads(0, makeAdd(1, 2, 3)), PanicError);
}

TEST(Scoreboard, DoubleReserveSameDestPanics)
{
    Scoreboard sb(1);
    sb.reserve(0, makeAdd(1, 2, 3));
    EXPECT_THROW(sb.reserve(0, makeAdd(1, 4, 5)), PanicError);
}

} // namespace
} // namespace bow
