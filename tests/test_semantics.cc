/**
 * @file
 * Functional-semantics tests: one expectation per opcode family,
 * guard predicates, branches and memory effects.
 */

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sm/semantics.h"

namespace bow {
namespace {

/** Evaluate a one-instruction kernel body with given register seed. */
class SemanticsTest : public ::testing::Test
{
  protected:
    Value
    evalOne(const std::string &asmText,
            std::initializer_list<std::pair<RegId, Value>> seed = {})
    {
        kernel = assemble(asmText + "\nexit;", "sem");
        regs.fill(0);
        for (const auto &[r, v] : seed)
            regs[r] = v;
        fx = evaluate(kernel, 0, regs, /*warpId=*/2, /*numWarps=*/8,
                      mem);
        return fx.result;
    }

    Kernel kernel;
    RegFileState regs{};
    MemoryStore mem;
    ExecEffect fx;
};

TEST_F(SemanticsTest, Arithmetic)
{
    EXPECT_EQ(evalOne("add $r1, $r2, $r3;", {{2, 5}, {3, 7}}), 12u);
    EXPECT_EQ(evalOne("sub $r1, $r2, $r3;", {{2, 5}, {3, 7}}),
              static_cast<Value>(-2));
    EXPECT_EQ(evalOne("mul $r1, $r2, $r3;", {{2, 5}, {3, 7}}), 35u);
    EXPECT_EQ(evalOne("mad $r1, $r2, $r3, $r4;",
                      {{2, 5}, {3, 7}, {4, 1}}),
              36u);
}

TEST_F(SemanticsTest, MinMaxAreSigned)
{
    const Value neg1 = static_cast<Value>(-1);
    EXPECT_EQ(evalOne("min $r1, $r2, $r3;", {{2, neg1}, {3, 1}}),
              neg1);
    EXPECT_EQ(evalOne("max $r1, $r2, $r3;", {{2, neg1}, {3, 1}}), 1u);
}

TEST_F(SemanticsTest, BitwiseAndShifts)
{
    EXPECT_EQ(evalOne("and $r1, $r2, $r3;", {{2, 0xF0}, {3, 0x3C}}),
              0x30u);
    EXPECT_EQ(evalOne("or $r1, $r2, $r3;", {{2, 0xF0}, {3, 0x0F}}),
              0xFFu);
    EXPECT_EQ(evalOne("xor $r1, $r2, $r3;", {{2, 0xFF}, {3, 0x0F}}),
              0xF0u);
    EXPECT_EQ(evalOne("shl $r1, $r2, 4;", {{2, 0x1}}), 0x10u);
    EXPECT_EQ(evalOne("shr $r1, $r2, 4;", {{2, 0x100}}), 0x10u);
    // Shift amounts wrap at 32.
    EXPECT_EQ(evalOne("shl $r1, $r2, 33;", {{2, 1}}), 2u);
}

TEST_F(SemanticsTest, UnaryOps)
{
    EXPECT_EQ(evalOne("abs $r1, $r2;", {{2, static_cast<Value>(-9)}}),
              9u);
    EXPECT_EQ(evalOne("neg $r1, $r2;", {{2, 9}}),
              static_cast<Value>(-9));
    EXPECT_EQ(evalOne("mov $r1, $r2;", {{2, 1234}}), 1234u);
    EXPECT_EQ(evalOne("cvt $r1, $r2;", {{2, 1234}}), 1234u);
}

TEST_F(SemanticsTest, SetAndSetp)
{
    EXPECT_EQ(evalOne("set.lt.s32 $r1, $r2, $r3;", {{2, 1}, {3, 2}}),
              1u);
    EXPECT_EQ(evalOne("setp.eq.s32 $p1, $r2, $r3;", {{2, 1}, {3, 2}}),
              0u);
    EXPECT_TRUE(fx.wrote);
}

TEST_F(SemanticsTest, SfuOpsAreDeterministic)
{
    const Value a = evalOne("sqrt $r1, $r2;", {{2, 144}});
    EXPECT_EQ(a, 12u);
    EXPECT_EQ(evalOne("sqrt $r1, $r2;", {{2, 145}}), 12u);
    EXPECT_EQ(evalOne("lg2 $r1, $r2;", {{2, 1024}}), 10u);
    EXPECT_EQ(evalOne("ex2 $r1, $r2;", {{2, 5}}), 32u);
    EXPECT_EQ(evalOne("rcp $r1, $r2;", {{2, 0}}), 0xFFFFFFFFu);
    // sin is a deterministic mixing function.
    const Value s1 = evalOne("sin $r1, $r2;", {{2, 7}});
    const Value s2 = evalOne("sin $r1, $r2;", {{2, 7}});
    EXPECT_EQ(s1, s2);
}

TEST_F(SemanticsTest, SpecialRegisters)
{
    EXPECT_EQ(evalOne("mov $r1, %warpid;"), 2u);
    EXPECT_EQ(evalOne("mov $r1, %nwarps;"), 8u);
}

TEST_F(SemanticsTest, ConstMemOperand)
{
    mem.store(MemSpace::Const, 0x18, 777);
    Kernel k = assemble("add $r1, s[0x18], $r2; exit;", "c");
    regs.fill(0);
    regs[2] = 1;
    const auto e = evaluate(k, 0, regs, 0, 1, mem);
    EXPECT_EQ(e.result, 778u);
}

TEST_F(SemanticsTest, LoadAndStore)
{
    mem.store(MemSpace::Global, 0x110, 55);
    evalOne("ld.global $r1, [$r2+0x10];", {{2, 0x100}});
    EXPECT_TRUE(fx.isMem);
    EXPECT_EQ(fx.addr, 0x110u);
    EXPECT_EQ(fx.result, 55u);

    evalOne("st.global [$r2+4], $r3;", {{2, 0x200}, {3, 99}});
    EXPECT_TRUE(fx.isMem);
    EXPECT_FALSE(fx.wrote);
    EXPECT_EQ(mem.load(MemSpace::Global, 0x204), 99u);
}

TEST_F(SemanticsTest, BranchTakenAndGuards)
{
    Kernel k = assemble(
        "@$p0 bra target;\n"
        "nop;\n"
        "target:\n"
        "exit;", "br");
    regs.fill(0);
    regs[predReg(0)] = 1;
    auto taken = evaluate(k, 0, regs, 0, 1, mem);
    EXPECT_TRUE(taken.branchTaken);
    EXPECT_EQ(taken.nextPc, 2u);

    regs[predReg(0)] = 0;
    auto fall = evaluate(k, 0, regs, 0, 1, mem);
    EXPECT_FALSE(fall.branchTaken);
    EXPECT_FALSE(fall.guardPassed);
    EXPECT_EQ(fall.nextPc, 1u);
}

TEST_F(SemanticsTest, NegatedGuard)
{
    Kernel k = assemble(
        "@!$p0 bra target;\n"
        "nop;\n"
        "target:\n"
        "exit;", "br");
    regs.fill(0);
    regs[predReg(0)] = 0;
    EXPECT_TRUE(evaluate(k, 0, regs, 0, 1, mem).branchTaken);
    regs[predReg(0)] = 1;
    EXPECT_FALSE(evaluate(k, 0, regs, 0, 1, mem).branchTaken);
}

TEST_F(SemanticsTest, GuardSuppressesAllEffects)
{
    Kernel k = assemble("@$p0 st.global [$r1], $r2; exit;", "g");
    regs.fill(0);
    regs[1] = 0x400;
    regs[2] = 7;
    regs[predReg(0)] = 0;
    MemoryStore before = mem;
    const auto e = evaluate(k, 0, regs, 0, 1, mem);
    EXPECT_FALSE(e.guardPassed);
    EXPECT_FALSE(e.isMem);
    EXPECT_TRUE(mem.contentsEqual(before));
}

TEST_F(SemanticsTest, ExitEndsWarp)
{
    Kernel k = assemble("exit;", "x");
    regs.fill(0);
    EXPECT_TRUE(evaluate(k, 0, regs, 0, 1, mem).warpDone);
}

} // namespace
} // namespace bow
