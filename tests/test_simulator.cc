/**
 * @file
 * Simulator-facade tests: configuration validation, per-architecture
 * behaviour of run(), and compiler-pass integration.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

TEST(SimConfig, ValidateCatchesBadConfigs)
{
    SimConfig c = SimConfig::titanXPascal();
    c.windowSize = 1;
    EXPECT_THROW(c.validate(), FatalError);

    c = SimConfig::titanXPascal();
    c.numBanks = 0;
    EXPECT_THROW(c.validate(), FatalError);

    c = SimConfig::titanXPascal();
    c.arch = Architecture::BOW;
    c.numCollectors = 8; // fewer collectors than resident warps
    EXPECT_THROW(c.validate(), FatalError);

    c = SimConfig::titanXPascal();
    c.l1LineBytes = 96; // not a power of two
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(SimConfig, EffectiveBocEntriesDefault)
{
    SimConfig c = SimConfig::titanXPascal();
    c.windowSize = 3;
    EXPECT_EQ(c.effectiveBocEntries(), 12u);
    c.bocEntries = 6;
    EXPECT_EQ(c.effectiveBocEntries(), 6u);
}

TEST(SimConfig, ArchNames)
{
    EXPECT_EQ(archName(Architecture::Baseline), "baseline");
    EXPECT_EQ(archName(Architecture::BOW_WR_OPT), "bow-wr-opt");
    EXPECT_EQ(schedName(SchedPolicy::GTO), "gto");
}

TEST(Simulator, RunProducesPopulatedResult)
{
    Simulator sim(configFor(Architecture::BOW, 3));
    const auto res = sim.run(snippets::tinyVadd(4, 6));
    EXPECT_EQ(res.arch, "bow");
    EXPECT_EQ(res.windowSize, 3u);
    EXPECT_GT(res.stats.instructions, 0u);
    EXPECT_GT(res.energy.totalPj, 0.0);
    EXPECT_EQ(res.finalRegs.size(), 4u);
}

TEST(Simulator, CompilerPassOnlyForOptArch)
{
    const Launch launch = snippets::chainLoop(2, 6);
    Simulator plain(configFor(Architecture::BOW_WR, 3));
    EXPECT_EQ(plain.run(launch).tags.total(), 0u);

    Simulator opt(configFor(Architecture::BOW_WR_OPT, 3));
    EXPECT_GT(opt.run(launch).tags.total(), 0u);
}

TEST(Simulator, CompilerPassDoesNotMutateCallerKernel)
{
    Launch launch = snippets::chainLoop(2, 6);
    Simulator opt(configFor(Architecture::BOW_WR_OPT, 3));
    opt.run(launch);
    for (InstIdx i = 0; i < launch.kernel.size(); ++i)
        EXPECT_EQ(launch.kernel.inst(i).hint,
                  WritebackHint::BocAndRf);
}

TEST(Simulator, VerifyAgainstFunctionalPasses)
{
    for (auto arch : {Architecture::Baseline, Architecture::BOW,
                      Architecture::BOW_WR, Architecture::BOW_WR_OPT,
                      Architecture::RFC}) {
        Simulator sim(configFor(arch, 3));
        EXPECT_NO_THROW(
            sim.verifyAgainstFunctional(snippets::branchDiamond(6)))
            << archName(arch);
    }
}

TEST(Simulator, IndependentRunsAreReproducible)
{
    Simulator sim(configFor(Architecture::BOW_WR, 3));
    const Launch launch = snippets::chainLoop(4, 8);
    const auto a = sim.run(launch);
    const auto b = sim.run(launch);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.rfReads, b.stats.rfReads);
    EXPECT_EQ(a.stats.rfWrites, b.stats.rfWrites);
}

} // namespace
} // namespace bow
