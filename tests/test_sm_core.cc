/**
 * @file
 * End-to-end SM-core tests: whole kernels complete under every
 * architecture, statistics are internally consistent, and the BOW
 * variants actually shield the register file.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/sweep.h"
#include "sm/sm_core.h"
#include "workloads/builder.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

RunStats
runOn(Architecture arch, const Launch &launch, unsigned iw = 3,
      unsigned bocEntries = 0)
{
    SmCore core(configFor(arch, iw, bocEntries), launch);
    return core.run();
}

TEST(SmCore, BaselineRunsToCompletion)
{
    const Launch launch = snippets::tinyVadd(8, 8);
    const auto stats = runOn(Architecture::Baseline, launch);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.instructions, 0u);
    EXPECT_GT(stats.ipc(), 0.0);
}

TEST(SmCore, InstructionCountMatchesFunctional)
{
    const Launch launch = snippets::chainLoop(4, 10);
    const auto fn = runFunctional(launch);
    for (auto arch : {Architecture::Baseline, Architecture::BOW,
                      Architecture::BOW_WR, Architecture::RFC}) {
        const auto stats = runOn(arch, launch);
        EXPECT_EQ(stats.instructions, fn.dynamicInsts)
            << archName(arch);
    }
}

TEST(SmCore, FinalStateMatchesFunctionalBaseline)
{
    const Launch launch = snippets::branchDiamond(8);
    SmCore core(configFor(Architecture::Baseline), launch);
    core.run();
    const auto fn = runFunctional(launch, 100000, false);
    for (WarpId w = 0; w < 8; ++w) {
        for (unsigned r = 0; r < 256; ++r) {
            ASSERT_EQ(core.finalRegs()[w][r], fn.finalRegs[w][r])
                << "warp " << w << " reg " << r;
        }
    }
    EXPECT_TRUE(core.memory().contentsEqual(fn.finalMem));
}

TEST(SmCore, BowBypassesReads)
{
    const Launch launch = snippets::chainLoop(8, 20);
    const auto base = runOn(Architecture::Baseline, launch);
    const auto bow = runOn(Architecture::BOW, launch);
    EXPECT_GT(bow.bocForwards, 0u);
    EXPECT_LT(bow.rfReads, base.rfReads);
}

TEST(SmCore, BowIsWriteThrough)
{
    const Launch launch = snippets::chainLoop(8, 20);
    const auto base = runOn(Architecture::Baseline, launch);
    const auto bow = runOn(Architecture::BOW, launch);
    // Every write still reaches the RF (plus BOC copies).
    EXPECT_GE(bow.rfWrites, base.rfWrites);
    EXPECT_GT(bow.bocResultWrites, 0u);
}

TEST(SmCore, BowWrShieldsWrites)
{
    const Launch launch = snippets::chainLoop(8, 20);
    const auto bow = runOn(Architecture::BOW, launch);
    const auto wr = runOn(Architecture::BOW_WR, launch);
    EXPECT_LT(wr.rfWrites, bow.rfWrites);
    EXPECT_GT(wr.consolidatedWrites, 0u);
}

TEST(SmCore, CompilerHintsReduceWritesFurther)
{
    const Launch launch = snippets::chainLoop(8, 20);
    const auto wr = runOn(Architecture::BOW_WR, launch);

    Launch tagged = launch;
    tagWritebacks(tagged.kernel, 3);
    const auto opt = runOn(Architecture::BOW_WR_OPT, tagged);
    EXPECT_LE(opt.rfWrites, wr.rfWrites);
    EXPECT_GT(opt.destBocOnly + opt.destRfOnly + opt.destBocAndRf,
              0u);
}

TEST(SmCore, OcResidencyAccounted)
{
    const Launch launch = snippets::tinyVadd(8, 8);
    const auto stats = runOn(Architecture::Baseline, launch);
    EXPECT_GT(stats.ocCyclesTotal(), 0u);
    EXPECT_GT(stats.instsMem, 0u);
    EXPECT_GT(stats.instsNonMem, 0u);
    EXPECT_EQ(stats.instsMem + stats.instsNonMem,
              stats.instructions);
    EXPECT_LE(stats.ocCyclesMem, stats.totalCyclesMem);
    EXPECT_LE(stats.ocCyclesNonMem, stats.totalCyclesNonMem);
}

TEST(SmCore, BocOccupancySampled)
{
    const Launch launch = snippets::chainLoop(4, 10);
    const auto stats = runOn(Architecture::BOW_WR, launch);
    std::uint64_t samples = 0;
    for (auto b : stats.bocOccupancyHist)
        samples += b;
    EXPECT_GT(samples, 0u);
    // Baseline run never samples BOC occupancy.
    const auto base = runOn(Architecture::Baseline, launch);
    std::uint64_t none = 0;
    for (auto b : base.bocOccupancyHist)
        none += b;
    EXPECT_EQ(none, 0u);
}

TEST(SmCore, SrcOperandHistogramCountsIssues)
{
    const Launch launch = snippets::tinyVadd(2, 4);
    const auto stats = runOn(Architecture::Baseline, launch);
    std::uint64_t total = 0;
    for (auto b : stats.srcOperandHist)
        total += b;
    EXPECT_EQ(total, stats.instructions);
}

TEST(SmCore, MoreWarpsThanResidentSlots)
{
    // 40 warps > 32 resident: the launch queue must drain.
    const Launch launch = snippets::branchDiamond(40);
    const auto stats = runOn(Architecture::Baseline, launch);
    const auto fn = runFunctional(launch);
    EXPECT_EQ(stats.instructions, fn.dynamicInsts);
}

TEST(SmCore, HalfSizeBocStillCorrectAndSlightlySlower)
{
    const Launch launch = snippets::chainLoop(16, 24);
    const auto full = runOn(Architecture::BOW_WR, launch, 3, 12);
    const auto half = runOn(Architecture::BOW_WR, launch, 3, 6);
    EXPECT_EQ(full.instructions, half.instructions);
    // Half-size may cost cycles but never deadlocks.
    EXPECT_GT(half.ipc(), 0.0);
}

TEST(SmCore, RfcHitsSaveBankReads)
{
    const Launch launch = snippets::chainLoop(8, 20);
    const auto base = runOn(Architecture::Baseline, launch);
    const auto rfc = runOn(Architecture::RFC, launch);
    EXPECT_GT(rfc.rfcReads, 0u);
    EXPECT_GT(rfc.rfcWrites, 0u);
    EXPECT_LT(rfc.rfReads, base.rfReads);
    EXPECT_EQ(rfc.instructions, base.instructions);
}

TEST(SmCore, SameWarpStoreLoadOrderPreserved)
{
    // A store and a register-independent load to the same address:
    // the per-warp in-order LSU must make the load observe the store.
    KernelBuilder kb("st_ld_order");
    kb.movImm(0, 0x100);    // address
    kb.movImm(1, 77);       // value
    kb.store(Opcode::ST_GLOBAL, 0, 0, 1);
    kb.movImm(2, 0x100);    // independent address register
    kb.load(Opcode::LD_GLOBAL, 3, 2, 0);
    kb.exit();
    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = 4;
    for (auto arch : {Architecture::Baseline, Architecture::BOW_WR}) {
        SmCore core(configFor(arch, 3), launch);
        core.run();
        for (WarpId w = 0; w < 4; ++w)
            EXPECT_EQ(core.finalRegs()[w][3], 77u) << archName(arch);
    }
}

TEST(SmCore, SingleMshrStillCompletes)
{
    SimConfig config = configFor(Architecture::BOW_WR_OPT, 3);
    config.maxPendingLoads = 1;
    const Launch launch = snippets::tinyVadd(8, 6);
    SmCore tight(config, launch);
    const auto tightStats = tight.run();

    SmCore wide(configFor(Architecture::BOW_WR_OPT, 3), launch);
    const auto wideStats = wide.run();
    EXPECT_EQ(tightStats.instructions, wideStats.instructions);
    EXPECT_GE(tightStats.cycles, wideStats.cycles);
}

TEST(SmCore, SingleWarpLaunch)
{
    const Launch launch = snippets::chainLoop(1, 8);
    for (auto arch : {Architecture::Baseline, Architecture::BOW,
                      Architecture::BOW_WR_OPT}) {
        const auto stats = runOn(arch, launch);
        EXPECT_GT(stats.instructions, 0u) << archName(arch);
    }
}

TEST(SmCore, TwoLevelSchedulerEndToEnd)
{
    SimConfig config = configFor(Architecture::BOW_WR_OPT, 3);
    config.schedPolicy = SchedPolicy::TWO_LEVEL;
    Simulator sim(config);
    EXPECT_NO_THROW(
        sim.verifyAgainstFunctional(snippets::tinyVadd(12, 8)));
}

TEST(SmCore, CrossGenerationPresetsRun)
{
    const Launch launch = snippets::branchDiamond(16);
    for (SimConfig config : {SimConfig::fermi(), SimConfig::volta()}) {
        config.validate();
        SmCore core(config, launch);
        const auto stats = core.run();
        EXPECT_GT(stats.ipc(), 0.0);
    }
}

TEST(SmCore, ExtendedWindowEndToEnd)
{
    SimConfig config = configFor(Architecture::BOW_WR, 3, 6);
    config.extendedWindow = true;
    const Launch launch = snippets::chainLoop(8, 16);
    SmCore core(config, launch);
    const auto stats = core.run();
    const auto nominal =
        runOn(Architecture::BOW_WR, launch, 3, 6);
    EXPECT_GE(stats.bocForwards, nominal.bocForwards);
}

TEST(SmCore, DeadlockGuardFires)
{
    Launch launch = snippets::chainLoop(1, 1000000);
    SimConfig config = configFor(Architecture::Baseline);
    config.maxCycles = 1000;
    SmCore core(config, launch);
    EXPECT_THROW(core.run(), FatalError);
}

TEST(SmCore, DeadlockDiagnosticsDumpPerWarpState)
{
    // A genuinely infinite kernel: an unconditional branch to self.
    KernelBuilder kb("spin_forever");
    kb.movImm(1, 42);
    const auto spin = kb.newLabel();
    kb.bind(spin);
    kb.alu2Imm(Opcode::ADD, 2, 1, 1);
    kb.bra(spin);
    kb.exit();

    Launch launch;
    launch.kernel = kb.build();
    launch.numWarps = 3;

    SimConfig config = configFor(Architecture::BOW, 3);
    config.maxCycles = 2000;
    SmCore core(config, launch);

    try {
        core.run();
        FAIL() << "maxCycles guard did not trip";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        // The guard message itself...
        EXPECT_NE(msg.find("exceeded 2000 cycles"), std::string::npos)
            << msg;
        // ...plus the global snapshot and a per-warp stall dump.
        EXPECT_NE(msg.find("global: cycle=2000"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("warp 0:"), std::string::npos) << msg;
        EXPECT_NE(msg.find("warp 2:"), std::string::npos) << msg;
        EXPECT_NE(msg.find("stall="), std::string::npos) << msg;
        EXPECT_NE(msg.find("pendingWrites="), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("bocOccupancy="), std::string::npos)
            << msg;
    }
}

TEST(SmCore, RunTwicePanics)
{
    const Launch launch = snippets::tinyVadd(1, 2);
    SmCore core(configFor(Architecture::Baseline), launch);
    core.run();
    EXPECT_THROW(core.run(), PanicError);
}

TEST(SmCore, ZeroWarpLaunchIsFatal)
{
    Launch launch = snippets::tinyVadd(1, 2);
    launch.numWarps = 0;
    EXPECT_THROW(SmCore(configFor(Architecture::Baseline), launch),
                 FatalError);
}

} // namespace
} // namespace bow
