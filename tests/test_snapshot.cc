/**
 * @file
 * Full-state snapshot correctness (core/snapshot.h). Three families
 * of guarantees:
 *
 *  - Differential: snapshot a run at a mid-run cycle, restore the
 *    file into a fresh session, run both the resumed and the
 *    uninterrupted session to completion — the SimResults are
 *    byte-identical under the exhaustive sim_codec fingerprint
 *    (every stat, metric, final register and memory word), across
 *    real workloads, fuzzed kernels, all four architectures, SM
 *    counts {1, 2, 4, 28}, host-thread counts {1, 4} and idle
 *    fast-forward on/off. Saving is also side-effect free: the
 *    interrupted session finishes to the same bits.
 *
 *  - Codec: snapshotSchemaHash() is stable and nonzero; a saved file
 *    carries the complete validity header (format literal, schema
 *    hash, binary version, launch hash, cycle, embedded config).
 *
 *  - Robustness (mirrors the result-store suite): torn/truncated
 *    files, non-snapshot JSON, schema-hash drift, a different build
 *    and a different launch are each refused with a clear FatalError
 *    — never a panic, never a silently wrong resume. Snapshots of
 *    fault-injected runs are refused at save time.
 *
 * Every suite name starts with "Snapshot" so the CI sanitizer jobs
 * (.github/workflows/ci.yml) can select the lot with one regex.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/json_util.h"
#include "common/log.h"
#include "core/result_cache.h"
#include "core/snapshot.h"
#include "core/sweep.h"
#include "service/sim_codec.h"
#include "sm/fault_injector.h"
#include "tests/fuzz_kernels.h"
#include "workloads/registry.h"

namespace bow {
namespace {

constexpr double kScale = 0.05; // pinned like the golden gate

/** The codec as its own equality witness (see test_result_store.cc). */
std::string
fingerprint(const SimResult &result)
{
    return simResultToJson(result).dump();
}

/** A unique snapshot path under the gtest temp root. */
std::string
freshSnapshotPath()
{
    static std::atomic<unsigned> seq{0};
    return testing::TempDir() + "snap_" +
           std::to_string(seq.fetch_add(1)) + ".snap.json";
}

/** Run the FatalError-throwing @p fn and hand back the message; a
 *  PanicError (or no throw) fails the test. */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    } catch (const PanicError &e) {
        ADD_FAILURE() << "panicked instead of failing cleanly: "
                      << e.what();
        return {};
    }
    ADD_FAILURE() << "expected a FatalError";
    return {};
}

void
expectMessageContains(const std::string &message,
                      const std::string &needle)
{
    EXPECT_NE(message.find(needle), std::string::npos)
        << "message: " << message;
}

/**
 * The differential harness: reference run uninterrupted; second run
 * snapshotted roughly a third of the way through; snapshot restored
 * into a fresh session and run out. All three results must be
 * byte-identical.
 */
void
roundTrip(const Launch &launch, const SimConfig &config,
          const std::string &label)
{
    SCOPED_TRACE(label);

    SimSession reference(config, launch);
    reference.runToCompletion();
    const SimResult refResult = reference.result();
    const std::string refFp = fingerprint(refResult);

    SimSession live(config, launch);
    const Cycle target =
        std::max<Cycle>(1, refResult.stats.cycles / 3);
    while (!live.finished() && live.now() < target) {
        if (!live.stepCycle())
            break;
    }

    const std::string path = freshSnapshotPath();
    live.saveSnapshot(path);

    auto resumed = SimSession::resumeFromSnapshot(path, launch);
    ASSERT_NE(resumed, nullptr);
    EXPECT_EQ(resumed->now(), live.now());
    resumed->runToCompletion();
    EXPECT_EQ(fingerprint(resumed->result()), refFp)
        << "resumed run diverged from the uninterrupted run";

    // Saving must be a pure read of the state: the interrupted
    // session keeps going and lands on the same bits.
    live.runToCompletion();
    EXPECT_EQ(fingerprint(live.result()), refFp)
        << "saveSnapshot perturbed the live session";

    std::filesystem::remove(path);
}

/** A mid-run session over a real workload, for the robustness tests
 *  (returns the saved path; config/launch via out-params). */
std::string
savedWorkloadSnapshot(Launch &launchOut)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    launchOut = wl.launch;
    SimSession session(configFor(Architecture::BOW_WR), launchOut);
    for (int i = 0; i < 200 && session.stepCycle(); ++i) {
    }
    const std::string path = freshSnapshotPath();
    session.saveSnapshot(path);
    return path;
}

JsonValue
readSnapshotJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return parseJson(text.str());
}

void
writeSnapshotJson(const std::string &path, const JsonValue &entry)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << entry.dump();
}

// ---------------------------------------------------------------------
// Differential: real workloads.
// ---------------------------------------------------------------------

TEST(SnapshotDifferential, RealWorkloadsRoundTrip)
{
    const struct
    {
        const char *workload;
        Architecture arch;
    } cases[] = {
        {"VECTORADD", Architecture::Baseline},
        {"BFS", Architecture::BOW_WR},
        {"BTREE", Architecture::BOW_WR_OPT},
        {"BFS", Architecture::RFC},
    };
    for (const auto &c : cases) {
        const Workload wl = workloads::make(c.workload, kScale);
        roundTrip(wl.launch, configFor(c.arch),
                  strf(c.workload, "/", archName(c.arch)));
    }
}

TEST(SnapshotDifferential, MultiSmRealWorkloadsRoundTrip)
{
    {
        const Workload wl = workloads::make("BFS", kScale);
        SimConfig config = configFor(Architecture::BOW_WR);
        config.numSms = 2;
        roundTrip(wl.launch, config, "BFS/bow-wr/2sm");
    }
    {
        const Workload wl = workloads::make("BTREE", kScale);
        SimConfig config = configFor(Architecture::BOW_WR_OPT);
        config.numSms = 4;
        roundTrip(wl.launch, config, "BTREE/bow-wr-opt/4sm");
    }
}

TEST(SnapshotDifferential, MetricsRegistrySurvivesVerbatim)
{
    // fingerprint() already covers the registry via the result codec;
    // this spells the metric contract out on its own so a codec
    // change that drops metrics cannot hide.
    const Workload wl = workloads::make("BTREE", kScale);
    const SimConfig config = configFor(Architecture::BOW_WR_OPT);

    SimSession reference(config, wl.launch);
    reference.runToCompletion();
    const SimResult refResult = reference.result();

    SimSession live(config, wl.launch);
    for (int i = 0; i < 500 && live.stepCycle(); ++i) {
    }
    const std::string path = freshSnapshotPath();
    live.saveSnapshot(path);
    auto resumed = SimSession::resumeFromSnapshot(path, wl.launch);
    resumed->runToCompletion();
    const SimResult resResult = resumed->result();

    EXPECT_EQ(resResult.metrics.toJson().dump(),
              refResult.metrics.toJson().dump());
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Differential: fuzzed kernels across the config space.
// ---------------------------------------------------------------------

class SnapshotFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SnapshotFuzz, BitIdenticalAcrossArchsAndSmCounts)
{
    Launch launch = fuzzKernelLaunch(GetParam());
    launch.warpsPerCta = 1 + static_cast<unsigned>(GetParam() % 4);

    for (Architecture arch :
         {Architecture::Baseline, Architecture::BOW_WR,
          Architecture::BOW_WR_OPT, Architecture::RFC}) {
        for (unsigned numSms : {1u, 2u, 4u}) {
            SimConfig config = configFor(arch);
            config.numSms = numSms;
            roundTrip(launch, config,
                      strf("seed=", GetParam(), " arch=",
                           archName(arch), " numSms=", numSms));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz,
                         ::testing::Values(1, 7, 42, 1234));

TEST(SnapshotFuzzWide, DeviceScaleAndHostThreads)
{
    // The full device (28 SMs) stepped by a 4-thread host pool, plus
    // the hostThreads {1, 4} split at a smaller SM count: snapshots
    // must not depend on how the host parallelizes a cycle.
    for (const std::uint64_t seed : {7ull, 42ull}) {
        Launch launch = fuzzKernelLaunch(seed);
        launch.warpsPerCta = 1 + static_cast<unsigned>(seed % 4);
        for (const auto &[numSms, hostThreads] :
             {std::pair<unsigned, unsigned>{28, 4},
              {4, 1},
              {4, 4}}) {
            SimConfig config = configFor(Architecture::BOW_WR_OPT);
            config.numSms = numSms;
            config.hostThreads = hostThreads;
            roundTrip(launch, config,
                      strf("seed=", seed, " numSms=", numSms,
                           " hostThreads=", hostThreads));
        }
    }
}

TEST(SnapshotFuzzWide, FastForwardOffRoundTrips)
{
    Launch launch = fuzzKernelLaunch(42);
    launch.warpsPerCta = 2;
    for (unsigned numSms : {1u, 4u}) {
        SimConfig config = configFor(Architecture::BOW_WR);
        config.numSms = numSms;
        config.hostFastForward = false;
        roundTrip(launch, config,
                  strf("ff=off numSms=", numSms));
    }
}

// ---------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------

TEST(SnapshotCodec, SchemaHashIsStableAndNonzero)
{
    EXPECT_NE(snapshotSchemaHash(), 0u);
    EXPECT_EQ(snapshotSchemaHash(), snapshotSchemaHash());
    // The snapshot schema rides on the result codec's: a sim_codec
    // shape change must invalidate snapshots too, which it can only
    // do if the two hashes are coupled (snapshot.cc folds them).
    EXPECT_NE(snapshotSchemaHash(), simSchemaHash());
}

TEST(SnapshotCodec, SavedFileCarriesValidityHeader)
{
    Launch launch;
    const std::string path = savedWorkloadSnapshot(launch);
    const JsonValue entry = readSnapshotJson(path);

    EXPECT_EQ(jsonio::member(entry, "format").asString(),
              std::string(kSnapshotFormat));
    EXPECT_EQ(jsonio::getUint(entry, "schema"), snapshotSchemaHash());
    EXPECT_EQ(jsonio::member(entry, "binary").asString(),
              snapshotBinaryVersion());
    EXPECT_EQ(jsonio::getUint(entry, "launch"),
              launchContentHash(launch));
    EXPECT_NE(entry.find("cycle"), nullptr);
    EXPECT_NE(entry.find("config"), nullptr);
    EXPECT_NE(entry.find("state"), nullptr);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Robustness: every bad file is refused with a clear FatalError.
// ---------------------------------------------------------------------

TEST(SnapshotRobust, MissingFileIsRefused)
{
    const Workload wl = workloads::make("VECTORADD", kScale);
    const std::string msg = fatalMessage([&] {
        SimSession::resumeFromSnapshot(
            testing::TempDir() + "does_not_exist.snap.json",
            wl.launch);
    });
    expectMessageContains(msg, "does_not_exist");
}

TEST(SnapshotRobust, TornFileIsRefusedNotPanicked)
{
    Launch launch;
    const std::string path = savedWorkloadSnapshot(launch);

    // Truncate mid-file, as a full disk or a killed writer that
    // bypassed tmp+rename would.
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        std::getline(in, text, '\0');
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }

    const std::string msg = fatalMessage(
        [&] { SimSession::resumeFromSnapshot(path, launch); });
    expectMessageContains(msg, "torn or truncated");
    std::filesystem::remove(path);
}

TEST(SnapshotRobust, NonSnapshotJsonIsRefused)
{
    Launch launch;
    const std::string path = savedWorkloadSnapshot(launch);

    // Valid JSON, wrong file kind (a result-store entry, say).
    writeSnapshotJson(path, JsonValue::object());
    expectMessageContains(
        fatalMessage(
            [&] { SimSession::resumeFromSnapshot(path, launch); }),
        "not a bowsim snapshot file");
    std::filesystem::remove(path);
}

TEST(SnapshotRobust, SchemaMismatchIsRefused)
{
    Launch launch;
    const std::string path = savedWorkloadSnapshot(launch);

    JsonValue entry = readSnapshotJson(path);
    entry.set("schema", jsonio::getUint(entry, "schema") ^ 0x1);
    writeSnapshotJson(path, entry);

    expectMessageContains(
        fatalMessage(
            [&] { SimSession::resumeFromSnapshot(path, launch); }),
        "schema hash mismatch");
    std::filesystem::remove(path);
}

TEST(SnapshotRobust, BinaryVersionMismatchIsRefused)
{
    Launch launch;
    const std::string path = savedWorkloadSnapshot(launch);

    JsonValue entry = readSnapshotJson(path);
    entry.set("binary", snapshotBinaryVersion() + "+other-build");
    writeSnapshotJson(path, entry);

    expectMessageContains(
        fatalMessage(
            [&] { SimSession::resumeFromSnapshot(path, launch); }),
        "different bowsim build");
    std::filesystem::remove(path);
}

TEST(SnapshotRobust, WrongLaunchIsRefused)
{
    Launch launch;
    const std::string path = savedWorkloadSnapshot(launch);

    // Resuming VECTORADD's snapshot under a fuzz kernel must be
    // caught by the content hash, not crash deep in loadState.
    const Launch other = fuzzKernelLaunch(1);
    expectMessageContains(
        fatalMessage(
            [&] { SimSession::resumeFromSnapshot(path, other); }),
        "different launch");
    std::filesystem::remove(path);
}

TEST(SnapshotRobust, FaultInjectedRunsRefuseToSnapshot)
{
    // Injected state (armed plans, flipped bits in flight) is not
    // serialized; the save must refuse rather than produce a
    // snapshot that silently drops the fault.
    const Workload wl = workloads::make("VECTORADD", kScale);
    FaultPlan plan;
    plan.enabled = true;
    plan.cycle = 100;
    FaultInjector injector(plan, FaultProtection::None);

    const SimConfig config = configFor(Architecture::BOW_WR);
    SimSession session(config, wl.launch, &injector);
    for (int i = 0; i < 10 && session.stepCycle(); ++i) {
    }
    expectMessageContains(
        fatalMessage(
            [&] { session.saveSnapshot(freshSnapshotPath()); }),
        "fault injector");
}

} // namespace
} // namespace bow
