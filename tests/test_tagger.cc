/**
 * @file
 * Write-back tagger tests (paper Sec. IV-B), including the expected
 * per-instruction hints for the Figure 6 BTREE listing.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "compiler/writeback_tagger.h"
#include "isa/assembler.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

TEST(Tagger, RejectsTinyWindow)
{
    Kernel k = assemble("nop; exit;");
    EXPECT_THROW(tagWritebacks(k, 1), FatalError);
}

TEST(Tagger, TransientChainIsBocOnly)
{
    // r1 produced, consumed immediately, then dead.
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "add $r2, $r1, $r1;\n"
        "st.global [$r3], $r2;\n"
        "exit;");
    tagWritebacks(k, 3);
    EXPECT_EQ(k.inst(0).hint, WritebackHint::BocOnly);
    EXPECT_EQ(k.inst(1).hint, WritebackHint::BocOnly);
}

TEST(Tagger, FarReuseIsRfOnly)
{
    // r1's first use is 5 instructions away: outside an IW=3 window.
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "mov $r2, 2;\n"
        "mov $r3, 3;\n"
        "mov $r4, 4;\n"
        "mov $r5, 5;\n"
        "add $r6, $r1, $r5;\n"
        "st.global [$r7], $r6;\n"
        "exit;");
    tagWritebacks(k, 3);
    // r1: only use is far away -> RfOnly.
    EXPECT_EQ(k.inst(0).hint, WritebackHint::RfOnly);
    // r2: never read at all (dead value) -> RfOnly.
    EXPECT_EQ(k.inst(1).hint, WritebackHint::RfOnly);
    // r5: read one instruction later and dead after -> transient.
    EXPECT_EQ(k.inst(4).hint, WritebackHint::BocOnly);
}

TEST(Tagger, NearUsePlusFarUseIsBocAndRf)
{
    // r1 used immediately AND four instructions later.
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "add $r2, $r1, $r1;\n"  // near use (extends chain to 1)
        "mov $r3, 3;\n"
        "mov $r4, 4;\n"
        "mov $r5, 5;\n"
        "add $r6, $r1, $r2;\n"  // distance from chain anchor 1: 4 >= 3
        "st.global [$r7], $r6;\n"
        "exit;");
    tagWritebacks(k, 3);
    EXPECT_EQ(k.inst(0).hint, WritebackHint::BocAndRf);
}

TEST(Tagger, ChainedReusesStayBocOnly)
{
    // Accesses at distance 2 apart repeatedly: the extended window
    // keeps the value resident, so even the use at distance 6 from
    // the def is chain-reachable.
    Kernel k = assemble(
        "mov $r1, 1;\n"     // 0: def
        "mov $r8, 8;\n"     // 1
        "add $r2, $r1, $r8;\n" // 2: chain (2-0 < 3)
        "mov $r9, 9;\n"     // 3
        "add $r3, $r1, $r2;\n" // 4: chain (4-2 < 3)
        "mov $r4, 4;\n"     // 5
        "add $r5, $r1, $r3;\n" // 6: chain (6-4 < 3); r1 dead after
        "st.global [$r7], $r5;\n"
        "exit;");
    tagWritebacks(k, 3);
    EXPECT_EQ(k.inst(0).hint, WritebackHint::BocOnly);
}

TEST(Tagger, KilledValueNeverNeedsRf)
{
    // r1 overwritten before any far use.
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "add $r2, $r1, $r1;\n"
        "mov $r1, 9;\n"         // strong kill
        "st.global [$r3], $r1;\n"
        "st.global [$r3+4], $r2;\n"
        "exit;");
    tagWritebacks(k, 3);
    EXPECT_EQ(k.inst(0).hint, WritebackHint::BocOnly);
}

TEST(Tagger, ValueLiveAcrossBlockEndNeedsRf)
{
    // r1 is consumed in the next block; the compiler cannot reason
    // about dynamic distances across branches and must be safe.
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "add $r2, $r1, $r1;\n"
        "setp.ne.s32 $p0, $r2, 0;\n"
        "@$p0 bra out;\n"
        "nop;\n"
        "out:\n"
        "st.global [$r3], $r1;\n"
        "exit;");
    tagWritebacks(k, 3);
    EXPECT_EQ(k.inst(0).hint, WritebackHint::BocAndRf);
}

TEST(Tagger, GuardedReadDoesNotExtendChain)
{
    // The read at 1 is guarded: it may not execute, so it cannot
    // anchor the chain for the read at 3 (distance 3 from the def).
    Kernel k = assemble(
        "mov $r1, 1;\n"            // 0: def
        "@$p0 mov $r2, $r1;\n"     // 1: guarded near use
        "mov $r4, 4;\n"            // 2
        "add $r3, $r1, $r4;\n"     // 3: distance 3 >= IW from def
        "st.global [$r5], $r3;\n"
        "st.global [$r5+4], $r2;\n"
        "exit;");
    tagWritebacks(k, 3);
    EXPECT_EQ(k.inst(0).hint, WritebackHint::BocAndRf);
}

TEST(Tagger, Fig6HintsMatchPaperTableOne)
{
    Kernel k = assemble(snippets::btreeSnippetAsm(), "fig6");
    const TagStats stats = tagWritebacks(k, 3);

    // Instruction indices follow the listing (0-based).
    // ld r3: first use 12 instructions away -> RF only.
    EXPECT_EQ(k.inst(0).hint, WritebackHint::RfOnly);
    // mov r2: chained uses at 2,3,5 then killed at 9 -> transient.
    EXPECT_EQ(k.inst(1).hint, WritebackHint::BocOnly);
    // mul/mad r1 at 2,3: immediately consumed then killed.
    EXPECT_EQ(k.inst(2).hint, WritebackHint::BocOnly);
    EXPECT_EQ(k.inst(3).hint, WritebackHint::BocOnly);
    // shl r1 at 4: used at 5, killed at 8.
    EXPECT_EQ(k.inst(4).hint, WritebackHint::BocOnly);
    // mad/add r0 chain at 5,6,7: each consumed next, dead after 8.
    EXPECT_EQ(k.inst(5).hint, WritebackHint::BocOnly);
    EXPECT_EQ(k.inst(6).hint, WritebackHint::BocOnly);
    EXPECT_EQ(k.inst(7).hint, WritebackHint::BocOnly);
    // add r1 at 8: used at 9 (near) and 12 (chain breaks: 12-9 = 3).
    EXPECT_EQ(k.inst(8).hint, WritebackHint::BocAndRf);
    // ld r2 at 9: used at 10, killed at 10.
    EXPECT_EQ(k.inst(9).hint, WritebackHint::BocOnly);
    // shl r2 at 10: used at 11, dead after.
    EXPECT_EQ(k.inst(10).hint, WritebackHint::BocOnly);
    // add r4 at 11 and set p0 at 12: never used again -> RF only.
    EXPECT_EQ(k.inst(11).hint, WritebackHint::RfOnly);
    EXPECT_EQ(k.inst(12).hint, WritebackHint::RfOnly);

    EXPECT_EQ(stats.rfOnly, 3u);
    EXPECT_EQ(stats.bocOnly, 9u);
    EXPECT_EQ(stats.bocAndRf, 1u);
    EXPECT_EQ(stats.total(), 13u);
}

TEST(Tagger, ClearResetsToDefault)
{
    Kernel k = assemble(snippets::btreeSnippetAsm(), "fig6");
    tagWritebacks(k, 3);
    clearWritebackHints(k);
    for (InstIdx i = 0; i < k.size(); ++i)
        EXPECT_EQ(k.inst(i).hint, WritebackHint::BocAndRf);
}

TEST(Tagger, RfDemandCountsTransientOnlyRegisters)
{
    // r1 is only ever written transiently; r2 escapes to the RF.
    Kernel k = assemble(
        "mov $r1, 1;\n"
        "add $r2, $r1, $r1;\n"
        "mov $r3, 2;\n"
        "mov $r4, 3;\n"
        "mov $r5, 4;\n"
        "st.global [$r6], $r2;\n"   // far use of r2
        "exit;");
    tagWritebacks(k, 3);
    const RfDemand demand = analyzeRfDemand(k);
    EXPECT_EQ(demand.totalGprs, 7u);
    // r1 is transient (BocOnly); r6 is live-in; r2 is BocAndRf.
    EXPECT_GE(demand.rfFreeGprs, 1u);
    EXPECT_GT(demand.reduction(), 0.0);
    EXPECT_LT(demand.reduction(), 1.0);
}

TEST(Tagger, RfDemandLiveInRegistersAlwaysAllocated)
{
    // r9 is read before written (a launch parameter): even though
    // its later definition is transient, the incoming value needs RF
    // space, so r9 is never elidable. r1 has one RfOnly def, so it
    // is allocated too.
    Kernel k = assemble(
        "add $r1, $r9, $r9;\n"
        "mov $r9, 1;\n"
        "add $r1, $r9, $r9;\n"
        "st.global [$r1], $r1;\n"
        "exit;");
    tagWritebacks(k, 3);
    const RfDemand demand = analyzeRfDemand(k);
    EXPECT_EQ(demand.rfFreeGprs, 0u);
}

TEST(Tagger, WiderWindowNeverDecreasesTransients)
{
    Kernel k = assemble(snippets::btreeSnippetAsm(), "fig6");
    std::uint64_t prev = 0;
    for (unsigned iw = 2; iw <= 7; ++iw) {
        const TagStats s = tagWritebacks(k, iw);
        EXPECT_GE(s.bocOnly, prev) << "iw=" << iw;
        prev = s.bocOnly;
    }
}

} // namespace
} // namespace bow
