/**
 * @file
 * Trace front-end tests: parsing, validation, per-warp divergence,
 * and the export/replay round trip (a replayed trace must reproduce
 * the original launch's architectural results warp for warp).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "core/simulator.h"
#include "core/sweep.h"
#include "sm/trace.h"
#include "workloads/registry.h"
#include "workloads/snippets.h"

namespace bow {
namespace {

TEST(Trace, LoadsSimpleTwoWarpTrace)
{
    const char *text =
        "# a tiny trace\n"
        "warp 0\n"
        "mov $r1, 5;\n"
        "add $r2, $r1, $r1;\n"
        "warp 1\n"
        "mov $r2, 7;\n"
        "exit;\n";
    const Launch launch = loadWarpTraces(text, "t");
    EXPECT_EQ(launch.numWarps, 2u);
    ASSERT_EQ(launch.warpKernels.size(), 2u);
    // warp 0 got an exit appended; warp 1 kept its own.
    EXPECT_EQ(launch.warpKernels[0].size(), 3u);
    EXPECT_EQ(launch.warpKernels[1].size(), 2u);

    const auto fn = runFunctional(launch);
    EXPECT_EQ(fn.finalRegs[0][2], 10u);
    EXPECT_EQ(fn.finalRegs[1][2], 7u);
}

TEST(Trace, SectionsMayArriveOutOfOrder)
{
    const char *text =
        "warp 1\nmov $r1, 1;\n"
        "warp 0\nmov $r1, 0;\n";
    const Launch launch = loadWarpTraces(text);
    EXPECT_EQ(launch.numWarps, 2u);
    const auto fn = runFunctional(launch);
    EXPECT_EQ(fn.finalRegs[0][1], 0u);
    EXPECT_EQ(fn.finalRegs[1][1], 1u);
}

TEST(Trace, RejectsMissingWarpSection)
{
    EXPECT_THROW(loadWarpTraces("warp 1\nnop;\n"), FatalError);
}

TEST(Trace, RejectsDuplicateSection)
{
    EXPECT_THROW(loadWarpTraces("warp 0\nnop;\nwarp 0\nnop;\n"),
                 FatalError);
}

TEST(Trace, RejectsStatementsBeforeFirstHeader)
{
    EXPECT_THROW(loadWarpTraces("nop;\nwarp 0\nnop;\n"), FatalError);
}

TEST(Trace, RejectsBranchesAndLabels)
{
    EXPECT_THROW(loadWarpTraces("warp 0\nl:\nbra l;\n"), FatalError);
    EXPECT_THROW(loadWarpTraces("warp 0\nl: nop;\n"), FatalError);
}

TEST(Trace, RejectsEmptyAndMalformedHeaders)
{
    EXPECT_THROW(loadWarpTraces(""), FatalError);
    EXPECT_THROW(loadWarpTraces("warp -1\nnop;\n"), FatalError);
    EXPECT_THROW(loadWarpTraces("warp 0 junk\nnop;\n"), FatalError);
}

TEST(Trace, CommentsWithColonsAreFine)
{
    const char *text =
        "warp 0\n"
        "mov $r1, 1; // note: colons allowed here\n"
        "# another note: ok\n";
    EXPECT_NO_THROW(loadWarpTraces(text));
}

TEST(Trace, RoundTripReproducesArchitecturalState)
{
    // Export a branchy multi-warp launch and replay the trace: the
    // unrolled streams must land in the same final state.
    const Launch original = snippets::branchDiamond(6);
    const std::string traceText = dumpWarpTraces(original);
    const Launch replay = loadWarpTraces(traceText, "roundtrip");
    EXPECT_EQ(replay.numWarps, original.numWarps);

    const auto a = runFunctional(original, 4'000'000, false);
    const auto b = runFunctional(replay, 4'000'000, false);
    for (WarpId w = 0; w < original.numWarps; ++w) {
        for (unsigned r = 0; r < 256; ++r) {
            ASSERT_EQ(a.finalRegs[w][r], b.finalRegs[w][r])
                << "warp " << w << " reg " << r;
        }
    }
    EXPECT_TRUE(a.finalMem.contentsEqual(b.finalMem));
}

TEST(Trace, RoundTripOfLoopKernel)
{
    const Launch original = snippets::chainLoop(3, 9);
    const Launch replay =
        loadWarpTraces(dumpWarpTraces(original), "loop");
    const auto a = runFunctional(original, 4'000'000, false);
    const auto b = runFunctional(replay, 4'000'000, false);
    for (WarpId w = 0; w < original.numWarps; ++w)
        EXPECT_EQ(a.finalRegs[w][0], b.finalRegs[w][0]) << w;
    EXPECT_TRUE(a.finalMem.contentsEqual(b.finalMem));
}

TEST(Trace, ReplayRunsOnEveryArchitecture)
{
    const Launch replay = loadWarpTraces(
        dumpWarpTraces(snippets::tinyVadd(4, 6)), "vadd");
    for (auto arch : {Architecture::Baseline, Architecture::BOW,
                      Architecture::BOW_WR, Architecture::BOW_WR_OPT,
                      Architecture::RFC}) {
        Simulator sim(configFor(arch, 3));
        EXPECT_NO_THROW(sim.verifyAgainstFunctional(replay))
            << archName(arch);
    }
}

TEST(Trace, TaggerRunsPerWarpKernel)
{
    const Launch replay = loadWarpTraces(
        dumpWarpTraces(snippets::branchDiamond(4)), "tags");
    Simulator sim(configFor(Architecture::BOW_WR_OPT, 3));
    const auto res = sim.run(replay);
    EXPECT_GT(res.tags.total(), 0u);
}

TEST(Trace, WorkloadTraceReplayMatches)
{
    const auto wl = workloads::make("BTREE", 0.05);
    const Launch replay =
        loadWarpTraces(dumpWarpTraces(wl.launch), "btree");
    Simulator sim(configFor(Architecture::BOW_WR_OPT, 3));
    EXPECT_NO_THROW(sim.verifyAgainstFunctional(replay));
}

TEST(Trace, AbsoluteAddressesWork)
{
    const char *text =
        "warp 0\n"
        "mov $r1, 99;\n"
        "st.global [0x4000], $r1;\n"
        "ld.global $r2, [0x4000];\n";
    const Launch launch = loadWarpTraces(text);
    const auto fn = runFunctional(launch);
    EXPECT_EQ(fn.finalRegs[0][2], 99u);
}

TEST(Trace, GuardedInstructionsReplay)
{
    // A dynamic stream may carry guarded instructions whose guard
    // re-evaluates identically on replay.
    const char *text =
        "warp 0\n"
        "setp.eq.s32 $p0, $r1, 0;\n"   // true: r1 == 0
        "@$p0 mov $r2, 5;\n"
        "@!$p0 mov $r2, 9;\n";
    const Launch launch = loadWarpTraces(text);
    const auto fn = runFunctional(launch);
    EXPECT_EQ(fn.finalRegs[0][2], 5u);
}

TEST(Trace, MissingFileIsFatal)
{
    EXPECT_THROW(loadWarpTraceFile("/nonexistent/trace.txt"),
                 FatalError);
}

} // namespace
} // namespace bow
