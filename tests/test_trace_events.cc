/**
 * @file
 * TraceSink: cycle-window parsing, event ordering, ring-buffer
 * wraparound, the no-allocation guarantee of emit(), Chrome JSON
 * well-formedness, and the SmCore integration (a BOW-WR run records
 * bypass and writeback events).
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/log.h"
#include "common/trace_events.h"
#include "core/simulator.h"
#include "sm/sim_config.h"
#include "workloads/registry.h"

namespace bow {
namespace {

TraceEvent
ev(Cycle ts, TraceEventKind kind, WarpId warp = 0)
{
    TraceEvent e;
    e.ts = ts;
    e.kind = kind;
    e.warp = warp;
    return e;
}

TEST(TraceEvents, ParseCycleRange)
{
    const TraceConfig full = TraceConfig::parseCycleRange("100:200");
    EXPECT_EQ(full.firstCycle, 100u);
    EXPECT_EQ(full.lastCycle, 200u);

    const TraceConfig toEnd = TraceConfig::parseCycleRange("50:");
    EXPECT_EQ(toEnd.firstCycle, 50u);
    EXPECT_EQ(toEnd.lastCycle, kNoCycle);

    const TraceConfig fromStart = TraceConfig::parseCycleRange(":75");
    EXPECT_EQ(fromStart.firstCycle, 0u);
    EXPECT_EQ(fromStart.lastCycle, 75u);

    EXPECT_THROW(TraceConfig::parseCycleRange(""), FatalError);
    EXPECT_THROW(TraceConfig::parseCycleRange("abc"), FatalError);
    EXPECT_THROW(TraceConfig::parseCycleRange("1:2:3"), FatalError);
    EXPECT_THROW(TraceConfig::parseCycleRange("200:100"), FatalError);
}

TEST(TraceEvents, EmissionOrderPreserved)
{
    TraceSink sink;
    sink.emit(ev(1, TraceEventKind::Issue));
    sink.emit(ev(1, TraceEventKind::Bypass));
    sink.emit(ev(2, TraceEventKind::Dispatch));
    sink.emit(ev(5, TraceEventKind::Writeback));

    const std::vector<TraceEvent> events = sink.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].kind, TraceEventKind::Issue);
    EXPECT_EQ(events[1].kind, TraceEventKind::Bypass);
    EXPECT_EQ(events[2].kind, TraceEventKind::Dispatch);
    EXPECT_EQ(events[3].kind, TraceEventKind::Writeback);
    EXPECT_EQ(events[3].ts, 5u);
}

TEST(TraceEvents, WindowFiltersEvents)
{
    TraceConfig config;
    config.firstCycle = 10;
    config.lastCycle = 20;
    TraceSink sink(config);

    EXPECT_FALSE(sink.wants(9));
    EXPECT_TRUE(sink.wants(10));
    EXPECT_TRUE(sink.wants(19));
    EXPECT_FALSE(sink.wants(20)); // exclusive upper bound

    sink.emit(ev(9, TraceEventKind::Issue));
    sink.emit(ev(10, TraceEventKind::Issue));
    sink.emit(ev(20, TraceEventKind::Issue));
    EXPECT_EQ(sink.recorded(), 1u);
    EXPECT_EQ(sink.snapshot()[0].ts, 10u);
}

TEST(TraceEvents, RingBufferWraparound)
{
    TraceConfig config;
    config.capacity = 4;
    TraceSink sink(config);
    EXPECT_EQ(sink.capacity(), 4u);

    for (Cycle c = 0; c < 10; ++c)
        sink.emit(ev(c, TraceEventKind::Issue, WarpId(c)));

    // The ring keeps the newest 4 events, oldest first.
    EXPECT_EQ(sink.recorded(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    const std::vector<TraceEvent> events = sink.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].ts, 6u);
    EXPECT_EQ(events[3].ts, 9u);
}

TEST(TraceEvents, EmitNeverReallocates)
{
    TraceConfig config;
    config.capacity = 8;
    TraceSink sink(config);
    const TraceEvent *buffer = sink.data();

    for (Cycle c = 0; c < 100; ++c)
        sink.emit(ev(c, TraceEventKind::Writeback));

    // The buffer is preallocated at construction; a century of
    // events must not move it (the zero-allocation guarantee the
    // hot path relies on).
    EXPECT_EQ(sink.data(), buffer);
    EXPECT_EQ(sink.capacity(), 8u);
}

TEST(TraceEvents, ChromeJsonIsWellFormed)
{
    TraceSink sink;
    TraceEvent bypass = ev(7, TraceEventKind::Bypass, 2);
    bypass.reg = 5;
    bypass.arg = 2;
    sink.emit(bypass);
    TraceEvent wb = ev(9, TraceEventKind::Writeback, 2);
    wb.reg = 5;
    wb.arg = kTraceWbRf | kTraceWbBoc;
    sink.emit(wb);

    std::ostringstream os;
    sink.writeChromeJson(os, "UNITTEST");
    const JsonValue doc = parseJson(os.str());

    const JsonValue &events = doc.at("traceEvents");
    ASSERT_GT(events.size(), 2u); // metadata + the two slices

    std::size_t slices = 0;
    bool sawProcessName = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.at(i);
        const std::string &ph = e.at("ph").asString();
        if (ph == "M") {
            if (e.at("name").asString() == "process_name")
                sawProcessName = true;
            continue;
        }
        ASSERT_EQ(ph, "X");
        ++slices;
        EXPECT_TRUE(e.at("ts").isNumber());
        EXPECT_TRUE(e.at("dur").isNumber());
    }
    EXPECT_EQ(slices, 2u);
    EXPECT_TRUE(sawProcessName);
    EXPECT_NE(os.str().find("UNITTEST"), std::string::npos);
    EXPECT_NE(os.str().find("\"bypass\""), std::string::npos);
    EXPECT_NE(os.str().find("\"writeback\""), std::string::npos);
}

/** End-to-end: a traced BOW-WR run records the pipeline events the
 *  Perfetto view is built from. */
TEST(TraceEvents, SmCoreRecordsBypassAndWriteback)
{
    SimConfig config = SimConfig::titanXPascal();
    config.arch = Architecture::BOW_WR;

    TraceSink sink;
    const Workload wl = workloads::make("VECTORADD", 0.02);
    Simulator sim(config);
    const SimResult res =
        sim.run(wl.launch, nullptr, nullptr, &sink);

    const std::vector<TraceEvent> events = sink.snapshot();
    ASSERT_FALSE(events.empty());
    EXPECT_TRUE(std::is_sorted(
        events.begin(), events.end(),
        [](const TraceEvent &a, const TraceEvent &b) {
            return a.ts < b.ts;
        }));

    auto count = [&](TraceEventKind kind) {
        return static_cast<std::uint64_t>(std::count_if(
            events.begin(), events.end(),
            [kind](const TraceEvent &e) { return e.kind == kind; }));
    };
    EXPECT_EQ(count(TraceEventKind::Issue), res.stats.instructions);
    EXPECT_EQ(count(TraceEventKind::Complete),
              res.stats.instructions);
    EXPECT_EQ(count(TraceEventKind::Bypass) > 0,
              res.stats.bocForwards > 0);
    EXPECT_GT(count(TraceEventKind::Writeback), 0u);

    // An untraced run of the same launch is unaffected (tracing is
    // observation only).
    const SimResult plain = sim.run(wl.launch);
    EXPECT_EQ(plain.stats.cycles, res.stats.cycles);
    EXPECT_EQ(plain.stats.bocForwards, res.stats.bocForwards);
}

} // namespace
} // namespace bow
