/**
 * @file
 * Workload-generator tests: determinism, functional validity of all
 * 15 benchmarks, profile lookup, and characteristic shapes (operand
 * counts, warp-disjoint memory footprints).
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "compiler/reuse.h"
#include "isa/disassembler.h"
#include "workloads/generator.h"
#include "workloads/registry.h"

namespace bow {
namespace {

TEST(Profiles, FifteenBenchmarksInTableOrder)
{
    const auto names = workloads::allNames();
    ASSERT_EQ(names.size(), 15u);
    EXPECT_EQ(names.front(), "LIB");
    EXPECT_EQ(names.back(), "SAD");
}

TEST(Profiles, LookupIsCaseInsensitive)
{
    EXPECT_EQ(profileByName("bfs").name, "BFS");
    EXPECT_EQ(profileByName("SaD").name, "SAD");
    EXPECT_THROW(profileByName("nope"), FatalError);
}

TEST(Generator, DeterministicForSameProfile)
{
    const auto a = workloads::make("NW", 0.2);
    const auto b = workloads::make("NW", 0.2);
    EXPECT_EQ(disassemble(a.launch.kernel),
              disassemble(b.launch.kernel));
}

TEST(Generator, ScaleChangesTripCountOnly)
{
    const auto small = workloads::make("LIB", 0.1);
    const auto large = workloads::make("LIB", 1.0);
    // Identical static code apart from the loop-bound immediate.
    EXPECT_EQ(small.launch.kernel.size(), large.launch.kernel.size());
    const auto fnSmall = runFunctional(small.launch);
    const auto fnLarge = runFunctional(large.launch);
    EXPECT_LT(fnSmall.dynamicInsts, fnLarge.dynamicInsts);
}

TEST(Generator, AllBenchmarksExecuteFunctionally)
{
    for (const auto &wl : workloads::makeAll(0.1)) {
        const auto fn = runFunctional(wl.launch);
        EXPECT_GT(fn.dynamicInsts, 0u) << wl.name;
    }
}

TEST(Generator, NoMadBenchmarksHaveNoThreeSourceInsts)
{
    // LPS, BFS and BTREE are profiled with fMad = 0 (paper Fig. 8:
    // no instructions with three register sources).
    for (const char *name : {"LPS", "BFS", "BTREE"}) {
        const auto wl = workloads::make(name, 0.1);
        const auto fn = runFunctional(wl.launch);
        const auto h = sourceOperandHistogram(wl.launch.kernel,
                                              fn.traces);
        EXPECT_EQ(h[3], 0u) << name;
    }
}

TEST(Generator, MadHeavyBenchmarksHaveThreeSourceInsts)
{
    for (const char *name : {"CIFARNET", "STO", "SAD"}) {
        const auto wl = workloads::make(name, 0.1);
        const auto fn = runFunctional(wl.launch);
        const auto h = sourceOperandHistogram(wl.launch.kernel,
                                              fn.traces);
        EXPECT_GT(h[3], 0u) << name;
    }
}

TEST(Generator, WarpMemoryFootprintsAreDisjoint)
{
    // Every global/shared address a warp touches must carry its
    // warp offset (warpId << 18), so warps never race: check the
    // functional result is independent of warp execution order by
    // re-running with traces and comparing per-warp register state
    // to a single-warp launch of the same kernel.
    const auto wl = workloads::make("GAUSSIAN", 0.1);
    const auto fn = runFunctional(wl.launch);

    Launch solo = wl.launch;
    // Keep the same kernel but run warp 0 alone... warp 0 of the
    // multi-warp launch must behave identically because %nwarps is
    // unused by the generator.
    solo.numWarps = 1;
    const auto fnSolo = runFunctional(solo);
    for (unsigned r = 0; r < 256; ++r) {
        EXPECT_EQ(fn.finalRegs[0][r], fnSolo.finalRegs[0][r])
            << "reg " << r;
    }
}

TEST(Generator, BranchyProfilesDiverge)
{
    // BFS generates guarded skips; the dynamic instruction count
    // should differ from the static body x iterations product.
    const auto wl = workloads::make("BFS", 0.2);
    const auto fn = runFunctional(wl.launch);
    bool sawSuppressedPath = false;
    // At least two warps must have different dynamic lengths
    // (data-dependent branches driven by warp-dependent values).
    for (std::size_t w = 1; w < fn.traces.size(); ++w) {
        if (fn.traces[w].insts.size() != fn.traces[0].insts.size())
            sawSuppressedPath = true;
    }
    EXPECT_TRUE(sawSuppressedPath);
}

TEST(Generator, RejectsDegenerateProfiles)
{
    WorkloadProfile p = profileByName("LIB");
    p.workingRegs = 0;
    EXPECT_THROW(generateWorkload(p), FatalError);
    p = profileByName("LIB");
    p.workingRegs = 250;
    EXPECT_THROW(generateWorkload(p), FatalError);
    p = profileByName("LIB");
    p.bodyLen = 0;
    EXPECT_THROW(generateWorkload(p), FatalError);
}

TEST(Generator, CalibrationIsSeedRobust)
{
    // The reuse structure is a property of the profile's fate
    // weights, not of any particular RNG stream: re-seeding moves
    // the IW=3 read-bypass fraction only within a narrow band.
    WorkloadProfile p = profileByName("GAUSSIAN");
    const auto baseLaunch = generateWorkload(p, 0.15);
    const auto baseFn = runFunctional(baseLaunch);
    const double baseFrac =
        analyzeReuse(baseLaunch.kernel, baseFn.traces, 3)
            .readFraction();
    for (std::uint64_t seed : {7u, 1234u, 999u}) {
        p.seed = seed;
        const auto launch = generateWorkload(p, 0.15);
        const auto fn = runFunctional(launch);
        const double frac =
            analyzeReuse(launch.kernel, fn.traces, 3).readFraction();
        EXPECT_NEAR(frac, baseFrac, 0.12) << "seed=" << seed;
    }
}

TEST(Generator, SuitesAndDescriptionsPopulated)
{
    for (const auto &wl : workloads::makeAll(0.05)) {
        EXPECT_FALSE(wl.suite.empty()) << wl.name;
        EXPECT_FALSE(wl.description.empty()) << wl.name;
        EXPECT_GT(wl.launch.numWarps, 0u) << wl.name;
    }
}

TEST(Generator, ReuseLandsInPlausibleBand)
{
    // The paper's average read-bypass fraction at IW=3 is 59%; our
    // synthetic suite should land in a broad band around it.
    std::vector<double> fractions;
    for (const auto &wl : workloads::makeAll(0.15)) {
        const auto fn = runFunctional(wl.launch);
        const auto s = analyzeReuse(wl.launch.kernel, fn.traces, 3);
        fractions.push_back(s.readFraction());
    }
    double sum = 0.0;
    for (double f : fractions)
        sum += f;
    const double avg = sum / static_cast<double>(fractions.size());
    EXPECT_GT(avg, 0.35);
    EXPECT_LT(avg, 0.80);
}

} // namespace
} // namespace bow
